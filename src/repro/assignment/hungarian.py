"""Hungarian (Kuhn–Munkres) algorithm for the linear assignment problem.

Implemented as the O(n³) shortest-augmenting-path variant on dual
potentials, operating on rectangular matrices (rows <= columns are handled
by transposing internally).  ``hungarian_min`` minimizes total cost;
``hungarian_max`` maximizes total profit.
"""

from __future__ import annotations

import math
from typing import Sequence

Matrix = Sequence[Sequence[float]]


def _solve_min(cost: list[list[float]]) -> list[int]:
    """Return ``col_of_row`` for a square-or-wide cost matrix (rows <= cols).

    Classic potentials formulation: for each row we grow an alternating tree
    of tight edges until a free column is found, then augment.
    """
    n = len(cost)
    m = len(cost[0])
    inf = math.inf
    # Potentials for rows (u) and columns (v); p[j] = row matched to column j.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)  # 1-based; p[j] = row assigned to column j (0 = free)
    way = [0] * (m + 1)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [inf] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = inf
            j1 = 0
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    col_of_row = [-1] * n
    for j in range(1, m + 1):
        if p[j]:
            col_of_row[p[j] - 1] = j - 1
    return col_of_row


def hungarian_min(cost: Matrix) -> list[tuple[int, int]]:
    """Minimum-cost perfect matching on the smaller side of ``cost``.

    Returns a list of ``(row, column)`` pairs covering every row if
    ``rows <= cols``, otherwise every column.  An empty matrix yields an
    empty matching.
    """
    rows = len(cost)
    if rows == 0 or len(cost[0]) == 0:
        return []
    cols = len(cost[0])
    if any(len(r) != cols for r in cost):
        raise ValueError("cost matrix must be rectangular")
    if rows <= cols:
        col_of_row = _solve_min([list(map(float, r)) for r in cost])
        return [(i, j) for i, j in enumerate(col_of_row) if j >= 0]
    transposed = [[float(cost[i][j]) for i in range(rows)] for j in range(cols)]
    row_of_col = _solve_min(transposed)
    return [(i, j) for j, i in enumerate(row_of_col) if i >= 0]


def hungarian_max(profit: Matrix) -> list[tuple[int, int]]:
    """Maximum-profit matching: negate and minimize."""
    if len(profit) == 0 or len(profit[0]) == 0:
        return []
    negated = [[-float(x) for x in row] for row in profit]
    return hungarian_min(negated)
