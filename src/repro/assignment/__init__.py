"""Bipartite assignment substrate.

The paper solves the 1:1 attribute-matching selection as a bipartite graph
matching problem with the Hungarian algorithm (Section IV-C).  We implement
the Kuhn–Munkres algorithm from scratch; :mod:`scipy` is used only in the
test suite for cross-validation.
"""

from repro.assignment.hungarian import hungarian_max, hungarian_min

__all__ = ["hungarian_max", "hungarian_min"]
