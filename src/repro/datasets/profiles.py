"""The four dataset profiles mirroring Table II of the paper.

Each profile reproduces the *shape* of one evaluation dataset at laptop
scale (see DESIGN.md §3):

* ``iimb`` — small benchmark, identical schemas in both KBs, almost total
  overlap, low noise, almost no isolated entities.
* ``dblp_acm`` — publications and authors, a single relationship type
  (authorship), highly asymmetric KB sizes, clean attribute values.
* ``imdb_yago`` — movies/actors/directors/places with renamed schemas,
  noisy labels and a sizable share (~28%) of isolated entities (writers).
* ``dbpedia_yago`` — strongly heterogeneous schemas with attribute clutter,
  missing labels (~8%) and a majority (~60%) of isolated entities.
"""

from __future__ import annotations

from repro.datasets.synthesis import (
    AttributeSpec,
    NoiseConfig,
    RelationSpec,
    TypeSpec,
    WorldConfig,
)


def _scaled(count: int, scale: float) -> int:
    return max(4, int(round(count * scale)))


def iimb_config(scale: float = 1.0) -> WorldConfig:
    """IIMB-like: identical schemas, ~365 entities per KB, low noise."""
    types = (
        TypeSpec(
            "person",
            _scaled(120, scale),
            attributes=(
                AttributeSpec("birth_year", kind="year"),
                AttributeSpec("occupation", tokens=1),
            ),
            relations=(
                RelationSpec("actedIn", "movie", mean_degree=2.0, presence=0.8),
                RelationSpec("wasBornIn", "place", mean_degree=1.0, presence=0.9),
            ),
        ),
        TypeSpec(
            "movie",
            _scaled(100, scale),
            attributes=(
                AttributeSpec("release_year", kind="year"),
                AttributeSpec("genre", tokens=1),
            ),
            relations=(RelationSpec("directedBy", "person", mean_degree=1.0, presence=0.9),),
            label_tokens=3,
        ),
        TypeSpec(
            "place",
            _scaled(80, scale),
            attributes=(AttributeSpec("population", kind="number"),),
        ),
        TypeSpec(
            "organization",
            _scaled(65, scale),
            attributes=(AttributeSpec("founded", kind="year"),),
            relations=(RelationSpec("locatedIn", "place", mean_degree=1.0, presence=0.9),),
        ),
    )
    noise = NoiseConfig(
        label_typo_prob=0.15,
        label_token_drop_prob=0.05,
        value_noise_prob=0.15,
        value_break_prob=0.2,
        attribute_drop_prob=0.05,
        edge_drop_prob=0.05,
    )
    return WorldConfig(
        name="iimb",
        types=types,
        overlap=0.9,
        only1=0.05,
        only2=0.05,
        exact_label_fraction=0.4,
        noise1=NoiseConfig(),  # KB1 is the clean reference copy, as in IIMB
        noise2=noise,
        vocabulary_size=160,
        homonym_fraction=0.04,
    )


def dblp_acm_config(scale: float = 1.0) -> WorldConfig:
    """DBLP-ACM-like: one relationship type, asymmetric sizes, clean values."""
    types = (
        TypeSpec(
            "publication",
            _scaled(320, scale),
            attributes=(
                AttributeSpec("title", tokens=4),
                AttributeSpec("year", kind="year"),
                AttributeSpec("venue", tokens=2),
            ),
            relations=(RelationSpec("hasAuthor", "author", mean_degree=2.4),),
            label_tokens=3,
        ),
        TypeSpec("author", _scaled(260, scale), placement_from_sources=True),
    )
    noise = NoiseConfig(
        label_typo_prob=0.2,
        label_token_drop_prob=0.1,
        value_noise_prob=0.15,
        value_break_prob=0.15,
        attribute_drop_prob=0.04,
        edge_drop_prob=0.04,
    )
    return WorldConfig(
        name="dblp_acm",
        types=types,
        overlap=0.35,
        only1=0.03,
        only2=0.62,
        exact_label_fraction=0.35,
        noise1=NoiseConfig(label_typo_prob=0.05, value_noise_prob=0.05, value_break_prob=0.1),
        noise2=noise,
        vocabulary_size=140,
        homonym_fraction=0.08,
    )


def imdb_yago_config(scale: float = 1.0) -> WorldConfig:
    """IMDB-YAGO-like: renamed schemas, noisy labels, ~28% isolated matches."""
    types = (
        TypeSpec(
            "movie",
            _scaled(200, scale),
            attributes=(
                AttributeSpec("release_year", kind="year"),
                AttributeSpec("duration", kind="number"),
            ),
            relations=(RelationSpec("directedBy", "director", mean_degree=1.0, presence=0.9),),
            label_tokens=3,
        ),
        TypeSpec(
            "actor",
            _scaled(240, scale),
            attributes=(AttributeSpec("birth_year", kind="year"),),
            relations=(
                RelationSpec("actedIn", "movie", mean_degree=2.2, presence=0.9),
                RelationSpec("wasBornIn", "place", mean_degree=1.0, presence=0.8),
            ),
        ),
        TypeSpec(
            "director",
            _scaled(80, scale),
            attributes=(AttributeSpec("birth_year", kind="year"),),
            relations=(RelationSpec("wasBornIn", "place", mean_degree=1.0, presence=0.8),),
        ),
        TypeSpec(
            "place",
            _scaled(100, scale),
            attributes=(AttributeSpec("population", kind="number"),),
        ),
        # Writers have no relationships at all: they become the isolated
        # pairs that only the random-forest path can resolve (Table VIII).
        TypeSpec(
            "writer",
            _scaled(240, scale),
            attributes=(
                AttributeSpec("birth_year", kind="year"),
                AttributeSpec("notable_work", tokens=3),
            ),
        ),
    )
    schema2 = {
        "release_year": "initialReleaseDate",
        "duration": "filmLength",
        "birth_year": "yearOfBirth",
        "population": "numberOfInhabitants",
        "notable_work": "knownFor",
        "directedBy": "hasDirector",
        "actedIn": "performedIn",
        "wasBornIn": "birthPlace",
    }
    noise = NoiseConfig(
        label_typo_prob=0.3,
        label_token_drop_prob=0.15,
        value_noise_prob=0.2,
        value_break_prob=0.25,
        attribute_drop_prob=0.12,
        edge_drop_prob=0.08,
    )
    return WorldConfig(
        name="imdb_yago",
        types=types,
        overlap=0.35,
        only1=0.5,
        only2=0.1,
        exact_label_fraction=0.3,
        noise1=NoiseConfig(label_typo_prob=0.1, value_noise_prob=0.08, value_break_prob=0.15),
        noise2=noise,
        schema2=schema2,
        extra_attributes1=10,
        extra_attributes2=4,
        vocabulary_size=110,
        homonym_fraction=0.12,
    )


def dbpedia_yago_config(scale: float = 1.0) -> WorldConfig:
    """DBpedia-YAGO-like: heavy heterogeneity, missing labels, ~60% isolated."""
    types = (
        TypeSpec(
            "person",
            _scaled(130, scale),
            attributes=(
                AttributeSpec("birth_year", kind="year"),
                AttributeSpec("occupation", tokens=1, presence=0.8),
            ),
            relations=(
                RelationSpec("wasBornIn", "place", mean_degree=1.0, presence=0.85),
                RelationSpec("worksFor", "organization", mean_degree=1.0, presence=0.5),
            ),
        ),
        TypeSpec(
            "movie",
            _scaled(90, scale),
            attributes=(AttributeSpec("release_year", kind="year"),),
            relations=(RelationSpec("directedBy", "person", mean_degree=1.0, presence=0.9),),
            label_tokens=2,
        ),
        TypeSpec(
            "place",
            _scaled(90, scale),
            attributes=(
                AttributeSpec("population", kind="number"),
                AttributeSpec("area", kind="number", presence=0.7),
            ),
        ),
        TypeSpec(
            "organization",
            _scaled(70, scale),
            attributes=(AttributeSpec("founded", kind="year"),),
            relations=(RelationSpec("locatedIn", "place", mean_degree=1.0, presence=0.85),),
        ),
        # Relation-free types dominate: ~60% of gold matches are isolated.
        TypeSpec(
            "concept",
            _scaled(300, scale),
            attributes=(
                AttributeSpec("code", tokens=1),
                AttributeSpec("weight", kind="number", presence=0.6),
                AttributeSpec("category", tokens=2, presence=0.8),
            ),
        ),
        TypeSpec(
            "event",
            _scaled(260, scale),
            attributes=(
                AttributeSpec("happened", kind="year"),
                AttributeSpec("venue_name", tokens=2, presence=0.7),
            ),
            label_tokens=2,
        ),
    )
    schema2 = {
        "birth_year": "bornOnYear",
        "occupation": "hasProfession",
        "release_year": "publishedOnYear",
        "population": "hasPopulation",
        "area": "hasArea",
        "founded": "establishedOnYear",
        "code": "hasCode",
        "weight": "hasWeight",
        "category": "inCategory",
        "happened": "happenedOnYear",
        "venue_name": "venueLabel",
        "wasBornIn": "birthPlace",
        "worksFor": "affiliatedTo",
        "directedBy": "hasDirector",
        "locatedIn": "isLocatedIn",
    }
    noise = NoiseConfig(
        label_typo_prob=0.25,
        label_token_drop_prob=0.15,
        label_missing_prob=0.05,
        value_noise_prob=0.25,
        value_break_prob=0.3,
        attribute_drop_prob=0.15,
        edge_drop_prob=0.1,
    )
    return WorldConfig(
        name="dbpedia_yago",
        types=types,
        overlap=0.5,
        only1=0.25,
        only2=0.25,
        exact_label_fraction=0.35,
        noise1=NoiseConfig(
            label_typo_prob=0.12,
            label_missing_prob=0.04,
            value_noise_prob=0.1,
            value_break_prob=0.2,
            attribute_drop_prob=0.08,
        ),
        noise2=noise,
        schema2=schema2,
        extra_attributes1=40,
        extra_attributes2=6,
        vocabulary_size=110,
        homonym_fraction=0.12,
    )


PROFILE_BUILDERS = {
    "iimb": iimb_config,
    "dblp_acm": dblp_acm_config,
    "imdb_yago": imdb_yago_config,
    "dbpedia_yago": dbpedia_yago_config,
}
