"""Deterministic token vocabulary for synthetic entity labels.

Labels are built from pronounceable pseudo-words so that token-set
similarities behave like real labels: distinct entities rarely share all
tokens, related entities share some, and typos only dent one token.
"""

from __future__ import annotations

import random

_ONSETS = ["b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "k", "l",
           "m", "n", "p", "pr", "r", "s", "st", "t", "tr", "v", "w", "z"]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"]
_CODAS = ["", "n", "r", "s", "t", "l", "m", "ck", "nd", "st"]


def make_word(rng: random.Random, syllables: int = 2) -> str:
    """Generate one pronounceable pseudo-word."""
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(_ONSETS) + rng.choice(_NUCLEI) + rng.choice(_CODAS))
    return "".join(parts)


def make_vocabulary(rng: random.Random, size: int) -> list[str]:
    """Generate ``size`` distinct pseudo-words."""
    seen: set[str] = set()
    words: list[str] = []
    attempts = 0
    while len(words) < size:
        syllables = 2 + (attempts // (size * 4))  # grow words if space exhausted
        word = make_word(rng, syllables)
        attempts += 1
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


def typo(rng: random.Random, word: str) -> str:
    """Introduce a single character-level typo into ``word``."""
    if not word:
        return word
    pos = rng.randrange(len(word))
    op = rng.randrange(3)
    letter = chr(ord("a") + rng.randrange(26))
    if op == 0:  # substitution
        return word[:pos] + letter + word[pos + 1 :]
    if op == 1:  # deletion
        return word[:pos] + word[pos + 1 :]
    return word[:pos] + letter + word[pos:]  # insertion
