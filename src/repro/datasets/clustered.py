"""Multi-component synthetic datasets for the partition layer.

The four profile datasets grow one densely-connected world, so their ER
graphs tend toward few large components.  :func:`clustered_bundle`
instead builds many *independent* clusters — per cluster one studio
director, its movies and their actors — whose labels share a
cluster-unique token.  Candidate generation therefore never pairs
entities across clusters, and the ER graph decomposes into (at least)
one weakly-connected component per cluster: the worst case for a
monolithic run and the best case for :mod:`repro.partition`, which is
exactly what the partition tests and ``bench_partition`` need.

Label noise drops the movie/actor-distinguishing token from some KB2
labels, collapsing their priors into a within-cluster tie that only
crowd questions plus relational propagation can break — so the
human–machine loop has real work to do in every component.
"""

from __future__ import annotations

import random

from repro.datasets.synthesis import DatasetBundle
from repro.kb.model import KnowledgeBase

#: Distinguishing label words for movies/actors inside one cluster.
_WORDS = (
    "alpha", "bravo", "delta", "echo", "golf", "hotel", "india",
    "kilo", "lima", "mike", "oscar", "papa", "quebec", "romeo",
    "tango", "uniform", "victor", "whiskey", "xray", "yankee", "zulu",
)


def _word(index: int, cluster: int) -> str:
    """A distinguishing token unique to (index, cluster).

    The cluster id is baked into the token: a word shared across
    clusters would create cross-cluster candidate pairs, whose shared
    entities chain the clusters into one entity-closure component and
    defeat the whole point of this dataset.
    """
    base = _WORDS[index % len(_WORDS)]
    round_ = index // len(_WORDS)
    suffix = f"{cluster:03d}" if round_ == 0 else f"{round_}x{cluster:03d}"
    return f"{base}{suffix}"


def clustered_bundle(
    num_clusters: int = 8,
    movies_per_cluster: int = 5,
    seed: int = 0,
    label_noise: float = 0.3,
    critics_per_cluster: int = 0,
    name: str | None = None,
) -> DatasetBundle:
    """Generate a dataset whose ER graph has ≥ ``num_clusters`` components.

    Each cluster holds one director, ``movies_per_cluster`` movies and as
    many actors, wired director→movie→actor; every label carries the
    cluster token, so candidates — and hence ER-graph edges *and* shared
    entities — stay within a cluster.  ``label_noise`` is the
    probability that a KB2 movie/actor label loses its distinguishing
    word (director labels stay clean so each cluster keeps an ``M_in``
    seed and its hub).  ``critics_per_cluster`` adds relation-free
    entities whose candidate pairs are isolated — fodder for the
    classifier-only phase of :mod:`repro.partition`.

    Cross-cluster label Jaccard stays below the 0.3 candidate threshold:
    labels share at most one generic token (``film``/``actor``/
    ``critic``) out of ≥ 3 per side, and director labels are fully
    cluster-qualified (a shared ``director`` token in a 2-token label
    would hit 1/3 exactly and chain every cluster through the resulting
    candidate pairs).
    """
    if num_clusters < 1 or movies_per_cluster < 1:
        raise ValueError("need at least one cluster and one movie per cluster")
    rng = random.Random(seed)
    kb1 = KnowledgeBase("clustered1")
    kb2 = KnowledgeBase("clustered2")
    gold: set[tuple[str, str]] = set()
    entity_types: dict[str, str] = {}

    def add(world_id: str, type_name: str, label1: str, label2: str) -> tuple[str, str]:
        e1, e2 = f"x:{world_id}", f"y:{world_id}"
        kb1.add_entity(e1, label=label1)
        kb2.add_entity(e2, label=label2)
        gold.add((e1, e2))
        entity_types[e1] = entity_types[e2] = type_name
        return e1, e2

    def noisy(label: str) -> str:
        """Drop the distinguishing (last) word with probability label_noise."""
        if rng.random() < label_noise:
            return label.rsplit(" ", 1)[0]
        return label

    for c in range(num_clusters):
        cluster = f"studio{c:03d}"
        director_label = f"{cluster} director{c:03d}"
        d1, d2 = add(f"d{c}", "director", director_label, director_label)
        kb1.add_attribute_triple(d1, "founded", 1900 + c)
        kb2.add_attribute_triple(d2, "founded", 1900 + c)
        for j in range(movies_per_cluster):
            movie_label = f"{cluster} film {_word(j, c)}"
            m1, m2 = add(f"m{c}_{j}", "movie", movie_label, noisy(movie_label))
            year = 1980 + (c * 7 + j) % 40
            kb1.add_attribute_triple(m1, "year", year)
            kb2.add_attribute_triple(m2, "year", year)
            kb1.add_relationship_triple(d1, "directed", m1)
            kb2.add_relationship_triple(d2, "directed", m2)

            actor_label = f"{cluster} actor {_word(j, c)}"
            a1, a2 = add(f"a{c}_{j}", "actor", actor_label, noisy(actor_label))
            kb1.add_attribute_triple(a1, "born", 1950 + j)
            kb2.add_attribute_triple(a2, "born", 1950 + j)
            kb1.add_relationship_triple(m1, "stars", a1)
            kb2.add_relationship_triple(m2, "stars", a2)

        for j in range(critics_per_cluster):
            critic_label = f"{cluster} critic {_word(j, c)}"
            c1, c2 = add(f"c{c}_{j}", "critic", critic_label, noisy(critic_label))
            kb1.add_attribute_triple(c1, "age", 30 + j)
            kb2.add_attribute_triple(c2, "age", 30 + j)

    bundle = DatasetBundle(
        name=name or f"clustered-{num_clusters}x{movies_per_cluster}",
        kb1=kb1,
        kb2=kb2,
        gold_matches=gold,
        gold_attribute_matches={
            ("rdfs:label", "rdfs:label"),
            ("founded", "founded"),
            ("year", "year"),
            ("born", "born"),
            ("age", "age"),
        },
        gold_relationship_matches={("directed", "directed"), ("stars", "stars")},
        entity_types=entity_types,
        seed=seed,
    )
    return bundle
