"""Dataset registry: named access to the four evaluation profiles."""

from __future__ import annotations

from functools import lru_cache

from repro.datasets.profiles import PROFILE_BUILDERS
from repro.datasets.synthesis import DatasetBundle, generate_dataset

#: Canonical dataset order used throughout the experiments (Table II order).
DATASET_NAMES: tuple[str, ...] = ("iimb", "dblp_acm", "imdb_yago", "dbpedia_yago")

#: The evolving-KB dataset (``repro.stream``); loads as its step-0 base
#: world, with deltas available via :func:`repro.datasets.evolving_bundle`.
EVOLVING_NAME = "evolving"

#: Short display names matching the paper's abbreviations.
DISPLAY_NAMES: dict[str, str] = {
    "iimb": "IIMB",
    "dblp_acm": "D-A",
    "imdb_yago": "I-Y",
    "dbpedia_yago": "D-Y",
}


@lru_cache(maxsize=32)
def load_dataset(name: str, seed: int = 0, scale: float = 1.0) -> DatasetBundle:
    """Generate (and cache) the named dataset.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    seed:
        World-generation seed; different seeds give independent repetitions.
    scale:
        Multiplier on all entity-type counts (1.0 ≈ several hundred
        entities per KB; experiments use smaller scales where many runs
        are needed).
    """
    if name == EVOLVING_NAME:
        from repro.datasets.evolving import evolving_bundle

        return evolving_bundle(seed=seed, scale=scale).base
    try:
        builder = PROFILE_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of "
            f"{DATASET_NAMES + (EVOLVING_NAME,)}"
        ) from None
    bundle = generate_dataset(builder(scale), seed=seed)
    bundle.scale = scale
    return bundle
