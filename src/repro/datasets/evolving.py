"""Evolving two-KB worlds: a base bundle plus a seeded stream of deltas.

``evolving_bundle`` grows a :func:`~repro.datasets.clustered.clustered_bundle`
world and authors a deterministic sequence of :class:`~repro.stream.KBDelta`
steps against it — add a movie (and its actor) to a cluster, rename a
movie in both KBs, remove a movie, touch an attribute value, or open a
whole new cluster.  Every delta carries the fingerprint of the KB pair it
applies to and the gold-standard updates the simulated crowd needs, so a
stream can be replayed, composed, or cross-checked against a from-scratch
build of any step.

Edits follow the clustered dataset's token discipline (labels carry a
cluster-unique token), so the ER graph keeps one entity-closure component
per cluster and a step's dirt stays inside the clusters it names —
exactly the workload ``repro.stream`` is built for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.datasets.clustered import _word, clustered_bundle
from repro.datasets.synthesis import DatasetBundle
from repro.stream.delta import DeltaOp, KBDelta, kb_pair_fingerprint

Pair = tuple[str, str]


@dataclass(slots=True)
class EvolvingBundle:
    """A base world plus an ordered stream of deltas.

    ``deltas[i]`` transforms the step-``i`` world into step ``i+1``;
    :meth:`bundle_at` materializes any step from scratch (the
    equivalence suite's reference side).
    """

    base: DatasetBundle
    deltas: list[KBDelta]

    @property
    def num_steps(self) -> int:
        return len(self.deltas)

    def gold_at(self, step: int) -> set[Pair]:
        gold = set(self.base.gold_matches)
        for delta in self.deltas[:step]:
            gold = delta.apply_gold(gold)
        return gold

    def bundle_at(self, step: int) -> DatasetBundle:
        """The world after ``step`` deltas, as an ordinary bundle."""
        if not 0 <= step <= len(self.deltas):
            raise ValueError(
                f"step must be in [0, {len(self.deltas)}], got {step}"
            )
        kb1, kb2 = self.base.kb1, self.base.kb2
        for delta in self.deltas[:step]:
            kb1, kb2 = delta.apply(kb1, kb2)
        return DatasetBundle(
            name=f"{self.base.name}+{step}",
            kb1=kb1,
            kb2=kb2,
            gold_matches=self.gold_at(step),
            gold_attribute_matches=set(self.base.gold_attribute_matches),
            gold_relationship_matches=set(self.base.gold_relationship_matches),
            entity_types=dict(self.base.entity_types),
            seed=self.base.seed,
            scale=self.base.scale,
        )


class _StreamAuthor:
    """Authors one delta step against the current world state."""

    def __init__(self, rng: random.Random, movies_per_cluster: int, label_noise: float):
        self.rng = rng
        self.label_noise = label_noise
        self.movies_per_cluster = movies_per_cluster
        #: cluster index -> live movie indices.
        self.movies: dict[int, list[int]] = {}
        #: cluster index -> next fresh movie index (word uniqueness).
        self.next_movie: dict[int, int] = {}
        self.next_cluster = 0

    def seed_from_base(self, num_clusters: int) -> None:
        for c in range(num_clusters):
            self.movies[c] = list(range(self.movies_per_cluster))
            self.next_movie[c] = self.movies_per_cluster
        self.next_cluster = num_clusters

    # -- op builders ----------------------------------------------------
    def _noisy(self, label: str) -> str:
        if self.rng.random() < self.label_noise:
            return label.rsplit(" ", 1)[0]
        return label

    def _movie_ops(self, c: int, j: int) -> tuple[list[DeltaOp], list[Pair]]:
        """Ops adding movie ``j`` (and its actor) to cluster ``c``."""
        cluster = f"studio{c:03d}"
        m1, m2 = f"x:m{c}_{j}", f"y:m{c}_{j}"
        a1, a2 = f"x:a{c}_{j}", f"y:a{c}_{j}"
        movie_label = f"{cluster} film {_word(j, c)}"
        actor_label = f"{cluster} actor {_word(j, c)}"
        year = 1980 + (c * 7 + j) % 40
        ops = [
            DeltaOp("add_entity", 1, m1, value=movie_label),
            DeltaOp("add_entity", 2, m2, value=self._noisy(movie_label)),
            DeltaOp("add_attribute", 1, m1, "year", year),
            DeltaOp("add_attribute", 2, m2, "year", year),
            DeltaOp("add_relation", 1, f"x:d{c}", "directed", m1),
            DeltaOp("add_relation", 2, f"y:d{c}", "directed", m2),
            DeltaOp("add_entity", 1, a1, value=actor_label),
            DeltaOp("add_entity", 2, a2, value=self._noisy(actor_label)),
            DeltaOp("add_attribute", 1, a1, "born", 1950 + j % 40),
            DeltaOp("add_attribute", 2, a2, "born", 1950 + j % 40),
            DeltaOp("add_relation", 1, m1, "stars", a1),
            DeltaOp("add_relation", 2, m2, "stars", a2),
        ]
        return ops, [(m1, m2), (a1, a2)]

    def add_movie(self, c: int) -> KBDelta:
        j = self.next_movie[c]
        self.next_movie[c] = j + 1
        self.movies[c].append(j)
        ops, gold = self._movie_ops(c, j)
        return KBDelta(ops=tuple(ops), gold_add=tuple(gold))

    def remove_movie(self, c: int) -> KBDelta:
        j = self.rng.choice(self.movies[c])
        self.movies[c].remove(j)
        pairs = [(f"x:m{c}_{j}", f"y:m{c}_{j}"), (f"x:a{c}_{j}", f"y:a{c}_{j}")]
        ops = []
        for left, right in pairs:
            ops.append(DeltaOp("remove_entity", 1, left))
            ops.append(DeltaOp("remove_entity", 2, right))
        return KBDelta(ops=tuple(ops), gold_remove=tuple(pairs))

    def rename_movie(self, c: int, kb1, kb2) -> KBDelta:
        j = self.rng.choice(self.movies[c])
        fresh = self.next_movie[c]
        self.next_movie[c] = fresh + 1
        cluster = f"studio{c:03d}"
        m1, m2 = f"x:m{c}_{j}", f"y:m{c}_{j}"
        new_label = f"{cluster} film {_word(fresh, c)}"
        ops = []
        old1, old2 = kb1.label(m1), kb2.label(m2)
        if old1 is not None:
            ops.append(DeltaOp("remove_attribute", 1, m1, "rdfs:label", old1))
        if old2 is not None:
            ops.append(DeltaOp("remove_attribute", 2, m2, "rdfs:label", old2))
        ops.append(DeltaOp("add_attribute", 1, m1, "rdfs:label", new_label))
        ops.append(DeltaOp("add_attribute", 2, m2, "rdfs:label", self._noisy(new_label)))
        return KBDelta(ops=tuple(ops))

    def touch_year(self, c: int, kb1, kb2) -> KBDelta:
        """Update one movie's ``year`` value in both KBs (an in-place edit)."""
        j = self.rng.choice(self.movies[c])
        m1, m2 = f"x:m{c}_{j}", f"y:m{c}_{j}"
        ops = []
        for kb_index, kb, entity in ((1, kb1, m1), (2, kb2, m2)):
            for value in sorted(kb.attribute_values(entity, "year"), key=str):
                ops.append(DeltaOp("remove_attribute", kb_index, entity, "year", value))
            ops.append(
                DeltaOp("add_attribute", kb_index, entity, "year", 2020 + (c + j) % 5)
            )
        return KBDelta(ops=tuple(ops))

    def add_cluster(self) -> KBDelta:
        c = self.next_cluster
        self.next_cluster = c + 1
        cluster = f"studio{c:03d}"
        d1, d2 = f"x:d{c}", f"y:d{c}"
        director_label = f"{cluster} director{c:03d}"
        ops = [
            DeltaOp("add_entity", 1, d1, value=director_label),
            DeltaOp("add_entity", 2, d2, value=director_label),
            DeltaOp("add_attribute", 1, d1, "founded", 1900 + c),
            DeltaOp("add_attribute", 2, d2, "founded", 1900 + c),
        ]
        gold: list[Pair] = [(d1, d2)]
        self.movies[c] = []
        self.next_movie[c] = 0
        for _ in range(2):
            j = self.next_movie[c]
            self.next_movie[c] = j + 1
            self.movies[c].append(j)
            movie_ops, movie_gold = self._movie_ops(c, j)
            ops.extend(movie_ops)
            gold.extend(movie_gold)
        return KBDelta(ops=tuple(ops), gold_add=tuple(gold))

    # -- one step -------------------------------------------------------
    def author_step(self, kb1, kb2) -> KBDelta:
        clusters = [c for c, live in self.movies.items() if live]
        kinds = ["add_movie", "add_movie", "rename", "touch_year"]
        if any(len(self.movies[c]) >= 2 for c in clusters):
            kinds.append("remove_movie")
        kinds.append("add_cluster")
        kind = self.rng.choice(kinds)
        if kind == "add_cluster":
            return self.add_cluster()
        c = self.rng.choice(sorted(clusters))
        if kind == "add_movie":
            return self.add_movie(c)
        if kind == "rename":
            return self.rename_movie(c, kb1, kb2)
        if kind == "touch_year":
            return self.touch_year(c, kb1, kb2)
        candidates = [c for c in sorted(clusters) if len(self.movies[c]) >= 2]
        return self.remove_movie(self.rng.choice(candidates))


@lru_cache(maxsize=16)
def evolving_bundle(
    seed: int = 0,
    scale: float = 1.0,
    steps: int = 6,
    num_clusters: int | None = None,
    movies_per_cluster: int = 4,
    label_noise: float = 0.3,
) -> EvolvingBundle:
    """A clustered base world plus ``steps`` authored deltas.

    ``scale`` multiplies the default cluster count (mirroring the other
    datasets' scale knob); an explicit ``num_clusters`` overrides it.
    The result is cached — deltas carry chained fingerprints, so
    regeneration is deterministic anyway.
    """
    if num_clusters is None:
        num_clusters = max(3, round(8 * scale))
    base = clustered_bundle(
        num_clusters=num_clusters,
        movies_per_cluster=movies_per_cluster,
        seed=seed,
        label_noise=label_noise,
        critics_per_cluster=1,
        name=f"evolving-{num_clusters}x{movies_per_cluster}",
    )
    base.scale = scale
    author = _StreamAuthor(
        random.Random(seed * 7919 + 17), movies_per_cluster, label_noise
    )
    author.seed_from_base(num_clusters)

    deltas: list[KBDelta] = []
    kb1, kb2 = base.kb1, base.kb2
    for _ in range(steps):
        delta = author.author_step(kb1, kb2)
        delta = KBDelta(
            ops=delta.ops,
            gold_add=delta.gold_add,
            gold_remove=delta.gold_remove,
            parent_fingerprint=kb_pair_fingerprint(kb1, kb2),
        )
        kb1, kb2 = delta.apply(kb1, kb2, check_fingerprint=False)
        deltas.append(delta)
    return EvolvingBundle(base=base, deltas=deltas)
