"""Seeded two-KB world synthesis.

A *world* is a set of typed entities with attribute values and
relationships.  Two KBs are derived from the world by (a) sampling which
entities each KB contains, (b) renaming attributes and relationships
according to per-KB schema maps, and (c) corrupting labels, values and
edges with configurable noise.  Entities present in both KBs form the gold
standard; the schema maps define gold attribute matches.

The derivation knobs correspond directly to phenomena the paper's
evaluation hinges on: exact-label pairs seed the attribute matching and
consistency estimation (``M_in``), label noise controls candidate-set pair
completeness (Table V), missing labels reproduce the D-Y recall ceiling,
and relation-free entity types create the isolated pairs of Table VIII.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.vocab import make_vocabulary, typo
from repro.kb.model import KnowledgeBase


@dataclass(frozen=True, slots=True)
class AttributeSpec:
    """One attribute of an entity type.

    ``kind`` is ``"string"`` (values drawn from a per-attribute vocabulary),
    ``"number"`` (uniform floats) or ``"year"`` (integers in a range).
    ``presence`` is the probability that an entity carries the attribute.
    """

    name: str
    kind: str = "string"
    tokens: int = 2
    values_per_entity: int = 1
    presence: float = 1.0


@dataclass(frozen=True, slots=True)
class RelationSpec:
    """One outgoing relationship of an entity type.

    ``mean_degree`` is the expected number of targets (geometric-ish
    sampling, at least 1 when present); ``presence`` the probability that an
    entity has the relationship at all.
    """

    name: str
    target_type: str
    mean_degree: float = 1.0
    presence: float = 1.0


@dataclass(frozen=True, slots=True)
class TypeSpec:
    """An entity type: how many entities, their attributes and relations.

    ``placement_from_sources`` makes entities of this type appear in a KB
    exactly when some entity pointing at them does — authors exist in a
    bibliography only through their publications, for example.
    """

    name: str
    count: int
    attributes: tuple[AttributeSpec, ...] = ()
    relations: tuple[RelationSpec, ...] = ()
    label_tokens: int = 2
    placement_from_sources: bool = False


@dataclass(frozen=True, slots=True)
class NoiseConfig:
    """Per-KB corruption applied when deriving a KB from the world."""

    label_typo_prob: float = 0.0
    label_token_drop_prob: float = 0.0
    label_missing_prob: float = 0.0
    value_noise_prob: float = 0.0
    value_break_prob: float = 0.0
    attribute_drop_prob: float = 0.0
    edge_drop_prob: float = 0.0


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Full recipe for a synthetic dataset."""

    name: str
    types: tuple[TypeSpec, ...]
    #: Fraction of world entities present in both KBs (gold matches).
    overlap: float = 0.7
    #: Fractions present only in KB1 / only in KB2.
    only1: float = 0.15
    only2: float = 0.15
    #: Fraction of matched entities whose labels stay exactly equal in both
    #: KBs (these seed ``M_in``).
    exact_label_fraction: float = 0.3
    #: Fraction of entities per type that are *homonyms*: they copy the
    #: label of another same-type entity.  Homonyms create exact-label
    #: non-matches, so the initial matches ``M_in`` contain errors and the
    #: similarity partial order is genuinely non-monotone — the phenomenon
    #: that hurts monotonicity-based systems in the paper.
    homonym_fraction: float = 0.0
    noise1: NoiseConfig = field(default=NoiseConfig())
    noise2: NoiseConfig = field(default=NoiseConfig())
    #: Schema maps: world property name -> per-KB name.  Missing keys keep
    #: the world name in both KBs (IIMB-style identical schemas).
    schema1: dict[str, str] = field(default_factory=dict)
    schema2: dict[str, str] = field(default_factory=dict)
    #: Extra unmatched attribute names added to each KB with random values,
    #: reproducing schema clutter (DBpedia has 684 attributes, YAGO 36).
    extra_attributes1: int = 0
    extra_attributes2: int = 0
    vocabulary_size: int = 400
    value_vocabulary_size: int = 150


@dataclass(slots=True)
class DatasetBundle:
    """A generated dataset: two KBs plus the gold standard."""

    name: str
    kb1: KnowledgeBase
    kb2: KnowledgeBase
    gold_matches: set[tuple[str, str]]
    gold_attribute_matches: set[tuple[str, str]]
    gold_relationship_matches: set[tuple[str, str]]
    #: kb-entity id -> world type name (for analysis and partitioning).
    entity_types: dict[str, str]
    #: Generation provenance, the dataset half of a store cache key
    #: (:mod:`repro.store`); set by ``generate_dataset`` / ``load_dataset``.
    seed: int = 0
    scale: float = 1.0

    @property
    def num_matches(self) -> int:
        return len(self.gold_matches)


@dataclass(slots=True)
class _WorldEntity:
    world_id: str
    type_name: str
    label_tokens: list[str]
    attributes: dict[str, list[object]]


def _sample_degree(rng: random.Random, mean: float) -> int:
    """At-least-1 geometric-style degree with the given mean."""
    if mean <= 1.0:
        return 1
    extra = mean - 1.0
    count = 1
    while rng.random() < extra / (1.0 + extra):
        count += 1
        if count > mean * 6:  # guard against pathological streaks
            break
    return count


class _WorldBuilder:
    """Generates the shared world and derives the two noisy KBs."""

    def __init__(self, config: WorldConfig, seed: int):
        self.config = config
        self.rng = random.Random(seed)
        self.label_vocab = make_vocabulary(self.rng, config.vocabulary_size)
        self.value_vocab = make_vocabulary(self.rng, config.value_vocabulary_size)
        self.entities: dict[str, _WorldEntity] = {}
        self.by_type: dict[str, list[str]] = {}
        self.edges: list[tuple[str, str, str]] = []

    # ------------------------------------------------------------------
    def build_world(self) -> None:
        for spec in self.config.types:
            ids = []
            for i in range(spec.count):
                world_id = f"{spec.name}#{i}"
                tokens = self.rng.sample(self.label_vocab, spec.label_tokens)
                attributes = self._sample_attributes(spec)
                self.entities[world_id] = _WorldEntity(world_id, spec.name, tokens, attributes)
                ids.append(world_id)
            self.by_type[spec.name] = ids
            self._introduce_homonyms(ids)
        for spec in self.config.types:
            for world_id in self.by_type[spec.name]:
                self._sample_relations(spec, world_id)

    def _introduce_homonyms(self, ids: list[str]) -> None:
        """Give a fraction of entities the label of a same-type sibling."""
        fraction = self.config.homonym_fraction
        if fraction <= 0.0 or len(ids) < 2:
            return
        rng = self.rng
        for world_id in ids:
            if rng.random() < fraction:
                donor = rng.choice(ids)
                if donor != world_id:
                    self.entities[world_id].label_tokens = list(
                        self.entities[donor].label_tokens
                    )

    def _sample_attributes(self, spec: TypeSpec) -> dict[str, list[object]]:
        rng = self.rng
        attributes: dict[str, list[object]] = {}
        for attr in spec.attributes:
            if rng.random() >= attr.presence:
                continue
            values: list[object] = []
            for _ in range(attr.values_per_entity):
                if attr.kind == "string":
                    words = rng.sample(self.value_vocab, attr.tokens)
                    values.append(" ".join(words))
                elif attr.kind == "number":
                    values.append(round(rng.uniform(10.0, 1000.0), 2))
                elif attr.kind == "year":
                    # Date strings, not integers: percentage difference makes
                    # bare years non-discriminative (1950 vs 1980 -> 0.985),
                    # whereas real KB dates compare as token sets.
                    year = rng.randrange(1900, 2020)
                    month = rng.randrange(1, 13)
                    day = rng.randrange(1, 29)
                    values.append(f"{year}-{month:02d}-{day:02d}")
                else:
                    raise ValueError(f"unknown attribute kind {attr.kind!r}")
            attributes[attr.name] = values
        return attributes

    def _sample_relations(self, spec: TypeSpec, world_id: str) -> None:
        rng = self.rng
        for rel in spec.relations:
            if rng.random() >= rel.presence:
                continue
            targets = self.by_type.get(rel.target_type, [])
            if not targets:
                continue
            degree = min(_sample_degree(rng, rel.mean_degree), len(targets))
            for target in rng.sample(targets, degree):
                if target != world_id:
                    self.edges.append((world_id, rel.name, target))

    # ------------------------------------------------------------------
    def derive(self) -> DatasetBundle:
        config = self.config
        rng = self.rng
        derived_types = {t.name for t in config.types if t.placement_from_sources}
        placement: dict[str, str] = {}
        for world_id, entity in self.entities.items():
            if entity.type_name in derived_types:
                continue
            roll = rng.random()
            if roll < config.overlap:
                placement[world_id] = "both"
            elif roll < config.overlap + config.only1:
                placement[world_id] = "kb1"
            elif roll < config.overlap + config.only1 + config.only2:
                placement[world_id] = "kb2"
            else:
                placement[world_id] = "none"
        if derived_types:
            in1: set[str] = set()
            in2: set[str] = set()
            for source, _, target in self.edges:
                if self.entities[target].type_name not in derived_types:
                    continue
                where = placement.get(source)
                if where in ("both", "kb1"):
                    in1.add(target)
                if where in ("both", "kb2"):
                    in2.add(target)
            for world_id, entity in self.entities.items():
                if entity.type_name not in derived_types:
                    continue
                present1, present2 = world_id in in1, world_id in in2
                if present1 and present2:
                    placement[world_id] = "both"
                elif present1:
                    placement[world_id] = "kb1"
                elif present2:
                    placement[world_id] = "kb2"
                else:
                    placement[world_id] = "none"

        matched = [w for w, where in placement.items() if where == "both"]
        exact_count = int(len(matched) * config.exact_label_fraction)
        exact_label_ids = set(rng.sample(matched, exact_count)) if exact_count else set()

        kb1 = KnowledgeBase(f"{config.name}-1")
        kb2 = KnowledgeBase(f"{config.name}-2")
        id1: dict[str, str] = {}
        id2: dict[str, str] = {}
        entity_types: dict[str, str] = {}
        for world_id, where in placement.items():
            entity = self.entities[world_id]
            if where in ("both", "kb1"):
                local = f"x:{world_id}"
                id1[world_id] = local
                entity_types[local] = entity.type_name
                self._materialize(kb1, local, entity, config.noise1, config.schema1,
                                  exact=world_id in exact_label_ids)
            if where in ("both", "kb2"):
                local = f"y:{world_id}"
                id2[world_id] = local
                entity_types[local] = entity.type_name
                self._materialize(kb2, local, entity, config.noise2, config.schema2,
                                  exact=world_id in exact_label_ids)

        self._materialize_edges(kb1, id1, config.noise1, config.schema1)
        self._materialize_edges(kb2, id2, config.noise2, config.schema2)
        self._add_extra_attributes(kb1, config.extra_attributes1, "k1")
        self._add_extra_attributes(kb2, config.extra_attributes2, "k2")

        gold_matches = {(id1[w], id2[w]) for w in matched}
        attr_names = {a.name for t in config.types for a in t.attributes}
        rel_names = {r.name for t in config.types for r in t.relations}
        gold_attribute_matches = {
            (config.schema1.get(name, name), config.schema2.get(name, name))
            for name in attr_names
        }
        gold_relationship_matches = {
            (config.schema1.get(name, name), config.schema2.get(name, name))
            for name in rel_names
        }
        return DatasetBundle(
            name=config.name,
            kb1=kb1,
            kb2=kb2,
            gold_matches=gold_matches,
            gold_attribute_matches=gold_attribute_matches,
            gold_relationship_matches=gold_relationship_matches,
            entity_types=entity_types,
        )

    # ------------------------------------------------------------------
    def _materialize(
        self,
        kb: KnowledgeBase,
        local_id: str,
        entity: _WorldEntity,
        noise: NoiseConfig,
        schema: dict[str, str],
        exact: bool,
    ) -> None:
        rng = self.rng
        kb.add_entity(local_id)
        if exact or rng.random() >= noise.label_missing_prob:
            tokens = list(entity.label_tokens)
            if not exact:
                if len(tokens) > 1 and rng.random() < noise.label_token_drop_prob:
                    tokens.pop(rng.randrange(len(tokens)))
                if rng.random() < noise.label_typo_prob:
                    pos = rng.randrange(len(tokens))
                    tokens[pos] = typo(rng, tokens[pos])
            kb.add_attribute_triple(local_id, "rdfs:label", " ".join(tokens))
        for attr_name, values in entity.attributes.items():
            if rng.random() < noise.attribute_drop_prob:
                continue
            kb_attr = schema.get(attr_name, attr_name)
            for value in values:
                kb.add_attribute_triple(local_id, kb_attr, self._noisy_value(value, noise))

    def _noisy_value(self, value: object, noise: NoiseConfig) -> object:
        rng = self.rng
        if rng.random() >= noise.value_noise_prob:
            return value
        broken = rng.random() < noise.value_break_prob
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            factor = rng.uniform(0.3, 0.7) if broken else rng.uniform(0.96, 1.04)
            scaled = float(value) * factor
            return int(scaled) if isinstance(value, int) else round(scaled, 2)
        words = str(value).split(" ")
        if broken:
            words = rng.sample(self.value_vocab, max(1, len(words)))
        else:
            pos = rng.randrange(len(words))
            words[pos] = typo(rng, words[pos])
        return " ".join(words)

    def _materialize_edges(
        self,
        kb: KnowledgeBase,
        ids: dict[str, str],
        noise: NoiseConfig,
        schema: dict[str, str],
    ) -> None:
        rng = self.rng
        for source, relation, target in self.edges:
            if source not in ids or target not in ids:
                continue
            if rng.random() < noise.edge_drop_prob:
                continue
            kb.add_relationship_triple(ids[source], schema.get(relation, relation), ids[target])

    def _add_extra_attributes(self, kb: KnowledgeBase, count: int, prefix: str) -> None:
        """Schema clutter: rare attributes present in only one KB."""
        if count <= 0:
            return
        rng = self.rng
        entities = sorted(kb.entities)
        for i in range(count):
            attr = f"{prefix}:extra_{i}"
            for entity in rng.sample(entities, min(3, len(entities))):
                kb.add_attribute_triple(entity, attr, " ".join(rng.sample(self.value_vocab, 2)))


def generate_dataset(config: WorldConfig, seed: int = 0) -> DatasetBundle:
    """Generate a :class:`DatasetBundle` from ``config`` deterministically."""
    builder = _WorldBuilder(config, seed)
    builder.build_world()
    bundle = builder.derive()
    bundle.seed = seed
    return bundle
