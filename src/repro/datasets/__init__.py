"""Synthetic dataset suite.

The paper evaluates on four datasets (Table II): the IIMB benchmark,
DBLP-ACM, IMDB-YAGO and DBpedia-YAGO.  The original dumps are not available
offline, so this package synthesizes seeded two-KB worlds whose *structural
profile* mirrors each dataset: schema heterogeneity, relationship density,
entity-type mix, label noise, missing labels and the share of isolated
entities.  See DESIGN.md §3 for the substitution rationale.
"""

from repro.datasets.clustered import clustered_bundle
from repro.datasets.evolving import EvolvingBundle, evolving_bundle
from repro.datasets.synthesis import (
    AttributeSpec,
    DatasetBundle,
    NoiseConfig,
    RelationSpec,
    TypeSpec,
    WorldConfig,
    generate_dataset,
)
from repro.datasets.registry import DATASET_NAMES, EVOLVING_NAME, load_dataset

__all__ = [
    "AttributeSpec",
    "RelationSpec",
    "TypeSpec",
    "NoiseConfig",
    "WorldConfig",
    "DatasetBundle",
    "EvolvingBundle",
    "clustered_bundle",
    "evolving_bundle",
    "generate_dataset",
    "load_dataset",
    "DATASET_NAMES",
    "EVOLVING_NAME",
]
