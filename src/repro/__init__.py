"""Remp: crowdsourced collective entity resolution with relational match
propagation — a reproduction of Huang et al., ICDE 2020.

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.core` — the Remp pipeline and its stages
* :mod:`repro.kb` — the knowledge-base data model
* :mod:`repro.crowd` — worker simulation and the micro-task platform
* :mod:`repro.datasets` — the synthetic evaluation datasets
* :mod:`repro.baselines` — HIKE, POWER, Corleone, PARIS, SiGMa
* :mod:`repro.experiments` — one driver per paper table/figure
* :mod:`repro.store` — SQLite-backed persistence: a prepared-state cache
  keyed by ``(dataset, seed, scale, config-hash)``, per-run loop
  checkpoints for kill-and-resume, and a queryable ledger of every run
* :mod:`repro.service` — the concurrent matching service: deduplicated
  ``prepare()`` through the cache and thread-pooled sessions with an
  explicit ``submit / step / status / result`` lifecycle
* :mod:`repro.partition` — partitioned parallel execution: the ER graph
  sharded into entity-closure components and run across a process pool,
  with per-shard checkpoints and a deterministic merge
* :mod:`repro.stream` — incremental KB-delta matching: composable
  :class:`~repro.stream.KBDelta` edits, closure-local re-preparation and
  a delta-aware run driver whose incremental results are byte-identical
  to from-scratch runs on the post-delta KBs
* :mod:`repro.substrate` — the shared prepare substrate: one
  content-addressed kernel arena per ``(KB pair, config)`` key, shared
  across sessions, pool workers and stream steps
"""

from repro.core import Remp, RempConfig
from repro.crowd import CrowdPlatform
from repro.datasets import load_dataset
from repro.eval import evaluate_matches
from repro.kb import KnowledgeBase
from repro.service import MatchingService
from repro.store import RunStore
from repro.stream import KBDelta

__version__ = "1.8.0"

__all__ = [
    "Remp",
    "RempConfig",
    "CrowdPlatform",
    "KBDelta",
    "KnowledgeBase",
    "RunStore",
    "MatchingService",
    "load_dataset",
    "evaluate_matches",
    "__version__",
]
