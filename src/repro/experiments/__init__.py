"""Experiment drivers, one per table/figure of the paper's Section VIII.

Every driver exposes ``run(scale, seed, ...) -> ExperimentResult`` returning
the rows the corresponding paper artifact reports, plus a ``main()`` that
prints the rendered table.  The benchmark harness under ``benchmarks/``
wraps these drivers; EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
