"""Shared infrastructure for the experiment drivers."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core import Remp, RempConfig
from repro.core.pipeline import PreparedState, RempResult
from repro.crowd import CrowdPlatform
from repro.datasets import load_dataset
from repro.datasets.registry import DISPLAY_NAMES
from repro.datasets.synthesis import DatasetBundle
from repro.partition import CrowdSpec, ParallelRunner
from repro.store import RunStore, config_hash

Pair = tuple[str, str]

#: Error rate of the simulated "real" MTurk workers (≥95% approval).
REAL_WORKER_ERROR_RATE = 0.05
#: Redundancy used throughout the paper.
WORKERS_PER_QUESTION = 5


@dataclass(slots=True)
class ExperimentResult:
    """A rendered table plus the raw values for tests and benches."""

    title: str
    headers: list[str]
    rows: list[list[str]]
    raw: dict = field(default_factory=dict)

    def render(self) -> str:
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows)) if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = [self.title, ""]
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def display_name(dataset: str) -> str:
    return DISPLAY_NAMES.get(dataset, dataset)


#: Process-wide prepared-state cache shared by every experiment driver and
#: benchmark repetition.  Keyed by dataset provenance, a KB fingerprint
#: (guarding against hand-built bundles reusing a name) and config hash.
_PREPARED_CACHE: dict[tuple, PreparedState] = {}
_ENV_STORE: RunStore | None = None


def _env_store() -> RunStore | None:
    """The SQLite store named by ``REPRO_STORE``, if the variable is set.

    Lets ``repro experiment`` / benchmark invocations share offline work
    across processes through :mod:`repro.store`.
    """
    global _ENV_STORE
    path = os.environ.get("REPRO_STORE")
    if not path:
        return None
    if _ENV_STORE is None or _ENV_STORE.path != path:
        _ENV_STORE = RunStore(path)
    return _ENV_STORE


def _kb_fingerprint(kb) -> tuple:
    return (len(kb), kb.num_attribute_triples, kb.num_relationship_triples)


def _bundle_key(bundle: DatasetBundle, config: RempConfig | None) -> tuple:
    fingerprint = _kb_fingerprint(bundle.kb1) + _kb_fingerprint(bundle.kb2)
    return (bundle.name, bundle.seed, bundle.scale, fingerprint, config_hash(config))


def prepared_state(bundle: DatasetBundle, config: RempConfig | None = None) -> PreparedState:
    """Offline Remp artifacts for a bundle, via the prepared-state cache.

    Shared across approaches within one driver and across drivers within
    the process; with ``REPRO_STORE`` set, also persisted across
    processes.  Cache hits return the identical object, so approaches
    compared in one table really do share offline work.
    """
    key = _bundle_key(bundle, config)
    state = _PREPARED_CACHE.get(key)
    if state is not None:
        return state
    store = _env_store()
    if store is not None:
        state = store.load_prepared(bundle.name, bundle.seed, bundle.scale, config)
        # The store key carries no KB fingerprint; a hand-built bundle can
        # collide with a canonical dataset's row.  Treat a stored state
        # whose KBs don't match this bundle as a miss (and recompute).
        if state is not None and (
            _kb_fingerprint(state.kb1) != _kb_fingerprint(bundle.kb1)
            or _kb_fingerprint(state.kb2) != _kb_fingerprint(bundle.kb2)
        ):
            state = None
    if state is None:
        state = Remp(config or RempConfig()).prepare(bundle.kb1, bundle.kb2)
        if store is not None:
            store.save_prepared(bundle.name, bundle.seed, bundle.scale, config, state)
    _PREPARED_CACHE[key] = state
    return state


def real_worker_platform(bundle: DatasetBundle, seed: int = 0) -> CrowdPlatform:
    """The Table III crowd: high-quality workers, 5 labels per question."""
    return CrowdPlatform.with_simulated_workers(
        bundle.gold_matches,
        num_workers=50,
        error_rate=REAL_WORKER_ERROR_RATE,
        workers_per_question=WORKERS_PER_QUESTION,
        seed=seed,
    )


def error_rate_platform(
    bundle: DatasetBundle, error_rate: float, seed: int = 0
) -> CrowdPlatform:
    """The Figure 3 crowd: fixed error rate, 5 labels per question."""
    return CrowdPlatform.with_simulated_workers(
        bundle.gold_matches,
        num_workers=50,
        error_rate=error_rate,
        workers_per_question=WORKERS_PER_QUESTION,
        seed=seed,
    )


def partitioned_result(
    bundle: DatasetBundle,
    *,
    workers: int = 1,
    config: RempConfig | None = None,
    strategy: str = "remp",
    seed: int = 0,
    error_rate: float = 0.0,
    max_shard_size: int | None = None,
    target_shards: int | None = None,
    on_event=None,
) -> RempResult:
    """Run a bundle through the partition layer (:mod:`repro.partition`).

    Offline work comes from the shared prepared-state cache; the crowd
    is the service's (oracle at ``error_rate`` 0, else seeded simulated
    workers, derived per shard).  The merged result is identical for
    every ``workers`` value — experiments and benchmarks can fan out on
    all cores without perturbing reported numbers.
    """
    state = prepared_state(bundle, config)
    crowd = CrowdSpec(truth=bundle.gold_matches, error_rate=error_rate, seed=seed)
    kwargs = {} if target_shards is None else {"target_shards": target_shards}
    runner = ParallelRunner(
        config,
        seed=seed,
        workers=workers,
        strategy=strategy,
        max_shard_size=max_shard_size,
        on_event=on_event,
        **kwargs,
    )
    return runner.run(state, crowd)


def load(dataset: str, seed: int = 0, scale: float = 1.0) -> DatasetBundle:
    return load_dataset(dataset, seed=seed, scale=scale)


def percent(x: float) -> str:
    return f"{x * 100:.1f}%"
