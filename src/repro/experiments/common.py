"""Shared infrastructure for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import Remp, RempConfig
from repro.core.pipeline import PreparedState
from repro.crowd import CrowdPlatform
from repro.datasets import load_dataset
from repro.datasets.registry import DISPLAY_NAMES
from repro.datasets.synthesis import DatasetBundle

Pair = tuple[str, str]

#: Error rate of the simulated "real" MTurk workers (≥95% approval).
REAL_WORKER_ERROR_RATE = 0.05
#: Redundancy used throughout the paper.
WORKERS_PER_QUESTION = 5


@dataclass(slots=True)
class ExperimentResult:
    """A rendered table plus the raw values for tests and benches."""

    title: str
    headers: list[str]
    rows: list[list[str]]
    raw: dict = field(default_factory=dict)

    def render(self) -> str:
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows)) if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = [self.title, ""]
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def display_name(dataset: str) -> str:
    return DISPLAY_NAMES.get(dataset, dataset)


def prepared_state(bundle: DatasetBundle, config: RempConfig | None = None) -> PreparedState:
    """Offline Remp artifacts for a bundle (shared across approaches)."""
    return Remp(config or RempConfig()).prepare(bundle.kb1, bundle.kb2)


def real_worker_platform(bundle: DatasetBundle, seed: int = 0) -> CrowdPlatform:
    """The Table III crowd: high-quality workers, 5 labels per question."""
    return CrowdPlatform.with_simulated_workers(
        bundle.gold_matches,
        num_workers=50,
        error_rate=REAL_WORKER_ERROR_RATE,
        workers_per_question=WORKERS_PER_QUESTION,
        seed=seed,
    )


def error_rate_platform(
    bundle: DatasetBundle, error_rate: float, seed: int = 0
) -> CrowdPlatform:
    """The Figure 3 crowd: fixed error rate, 5 labels per question."""
    return CrowdPlatform.with_simulated_workers(
        bundle.gold_matches,
        num_workers=50,
        error_rate=error_rate,
        workers_per_question=WORKERS_PER_QUESTION,
        seed=seed,
    )


def load(dataset: str, seed: int = 0, scale: float = 1.0) -> DatasetBundle:
    return load_dataset(dataset, seed=seed, scale=scale)


def percent(x: float) -> str:
    return f"{x * 100:.1f}%"
