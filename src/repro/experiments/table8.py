"""Table VIII: F1-score of inference on isolated entity pairs.

Per dataset: the share of gold matches that are isolated (no relationships
on either side), the full Remp F1, and the F1 of the random-forest
classifier measured on the isolated gold subset alone.
Expected shape: the classifier is unreliable when isolated matches are a
tiny fraction (IIMB, D-A) and approaches Remp's overall quality when they
dominate (I-Y, D-Y).
"""

from __future__ import annotations

from repro.core import Remp
from repro.datasets import DATASET_NAMES
from repro.eval import evaluate_matches
from repro.experiments.common import (
    ExperimentResult,
    display_name,
    load,
    percent,
    prepared_state,
    real_worker_platform,
)


def run(
    scale: float = 1.0, seed: int = 0, datasets: tuple[str, ...] = DATASET_NAMES
) -> ExperimentResult:
    headers = ["Dataset", "Isolated matches", "Remp F1", "Random forest F1"]
    rows = []
    raw: dict = {}
    for dataset in datasets:
        bundle = load(dataset, seed=seed, scale=scale)
        state = prepared_state(bundle)
        platform = real_worker_platform(bundle, seed=seed)
        result = Remp().run(bundle.kb1, bundle.kb2, platform, state=state)

        isolated_gold = {
            pair
            for pair in bundle.gold_matches
            if not bundle.kb1.has_relations(pair[0]) and not bundle.kb2.has_relations(pair[1])
        }
        share = len(isolated_gold) / len(bundle.gold_matches) if bundle.gold_matches else 0.0
        overall = evaluate_matches(result.matches, bundle.gold_matches)
        forest_predictions = result.isolated_matches | {
            p for p in result.labeled_matches if p in state.isolated
        }
        forest_quality = evaluate_matches(forest_predictions, isolated_gold)
        rows.append(
            [
                display_name(dataset),
                percent(share),
                percent(overall.f1),
                percent(forest_quality.f1),
            ]
        )
        raw[dataset] = {
            "isolated_share": share,
            "remp_f1": overall.f1,
            "forest_f1": forest_quality.f1,
        }
    return ExperimentResult(
        "Table VIII: F1-score of inference on isolated entity pairs",
        headers,
        rows,
        raw,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
