"""Table VI: F1-score w.r.t. varying portions of seed matches.

Remp's match-propagation module (no crowd, no isolated classifier) against
PARIS and SiGMa, with 20/40/60/80% of the gold matches as seeds, repeated
over several samples and averaged — the paper's protocol.
Expected shape: Remp leads at every portion, with PARIS weakest on the
relationship-poor datasets and SiGMa catching up at high portions.
"""

from __future__ import annotations

import random

from repro.baselines import Paris, SiGMa
from repro.core import Remp
from repro.datasets import DATASET_NAMES
from repro.eval import evaluate_matches
from repro.experiments.common import ExperimentResult, display_name, load, percent, prepared_state

PORTIONS = (0.2, 0.4, 0.6, 0.8)
REPETITIONS = 5


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: tuple[str, ...] = DATASET_NAMES,
    portions: tuple[float, ...] = PORTIONS,
    repetitions: int = REPETITIONS,
) -> ExperimentResult:
    headers = ["Dataset", "Approach"] + [f"{int(p * 100)}%" for p in portions]
    rows = []
    raw: dict = {}
    for dataset in datasets:
        bundle = load(dataset, seed=seed, scale=scale)
        state = prepared_state(bundle)
        gold = sorted(bundle.gold_matches)
        scores: dict[str, list[float]] = {"Remp": [], "PARIS": [], "SiGMa": []}
        for portion in portions:
            sums = {"Remp": 0.0, "PARIS": 0.0, "SiGMa": 0.0}
            for repetition in range(repetitions):
                rng = random.Random(seed * 1000 + repetition)
                seeds = set(rng.sample(gold, int(portion * len(gold))))
                remp_matches = Remp().propagate_only(
                    bundle.kb1, bundle.kb2, seeds, state=state
                )
                sums["Remp"] += evaluate_matches(remp_matches, bundle.gold_matches).f1
                sums["PARIS"] += evaluate_matches(
                    Paris().run(state, seeds).matches, bundle.gold_matches
                ).f1
                sums["SiGMa"] += evaluate_matches(
                    SiGMa().run(state, seeds).matches, bundle.gold_matches
                ).f1
            for name in sums:
                scores[name].append(sums[name] / repetitions)
        for name in ("Remp", "PARIS", "SiGMa"):
            rows.append([display_name(dataset), name] + [percent(v) for v in scores[name]])
        raw[dataset] = scores
    return ExperimentResult(
        "Table VI: F1-score w.r.t. varying portions of seed matches",
        headers,
        rows,
        raw,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
