"""Table III: F1-score and number of questions with (simulated) real workers.

Remp vs HIKE, POWER and Corleone on all four datasets, with a 95%-accuracy
worker pool, five labels per question and label reuse across approaches.
Expected shape: Remp attains the best F1 with the fewest questions, with
the largest savings on relationship-rich heterogeneous datasets.
"""

from __future__ import annotations

from repro.baselines import Corleone, Hike, Power
from repro.core import Remp
from repro.datasets import DATASET_NAMES
from repro.eval import evaluate_matches
from repro.experiments.common import (
    ExperimentResult,
    display_name,
    load,
    percent,
    prepared_state,
    real_worker_platform,
)


def run(scale: float = 1.0, seed: int = 0, datasets: tuple[str, ...] = DATASET_NAMES) -> ExperimentResult:
    headers = ["Dataset"]
    for approach in ("Remp", "HIKE", "POWER", "Corleone"):
        headers += [f"{approach} F1", f"{approach} #Q"]
    rows = []
    raw: dict = {}
    for dataset in datasets:
        bundle = load(dataset, seed=seed, scale=scale)
        state = prepared_state(bundle)
        platform = real_worker_platform(bundle, seed=seed)
        row = [display_name(dataset)]
        cells: dict[str, tuple[float, int]] = {}

        remp_result = Remp().run(bundle.kb1, bundle.kb2, platform, state=state)
        remp_quality = evaluate_matches(remp_result.matches, bundle.gold_matches)
        cells["Remp"] = (remp_quality.f1, remp_result.questions_asked)

        for approach in (Hike(), Power(), Corleone()):
            platform.reset_billing()
            result = approach.run(state, platform)
            quality = evaluate_matches(result.matches, bundle.gold_matches)
            cells[result.name] = (quality.f1, result.questions_asked)

        for approach in ("Remp", "HIKE", "POWER", "Corleone"):
            f1, questions = cells[approach]
            row += [percent(f1), str(questions)]
        rows.append(row)
        raw[dataset] = cells
    return ExperimentResult(
        "Table III: F1-score and number of questions with real(-quality) workers",
        headers,
        rows,
        raw,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
