"""Table VII: multiple questions selection with different µ per round.

Ground-truth labels; µ ∈ {1, 5, 10, 20}.  Expected shape: F1 stays stable
across µ, question count grows mildly with µ, and the number of
human–machine loops drops sharply — the latency/cost trade-off the paper
highlights.
"""

from __future__ import annotations

from repro.core import Remp, RempConfig
from repro.crowd import CrowdPlatform
from repro.datasets import DATASET_NAMES
from repro.eval import evaluate_matches
from repro.experiments.common import ExperimentResult, display_name, load, percent, prepared_state

MU_VALUES = (1, 5, 10, 20)


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: tuple[str, ...] = DATASET_NAMES,
    mu_values: tuple[int, ...] = MU_VALUES,
) -> ExperimentResult:
    headers = ["Dataset"]
    for mu in mu_values:
        headers += [f"mu={mu} F1", f"mu={mu} #Q", f"mu={mu} #L"]
    rows = []
    raw: dict = {}
    for dataset in datasets:
        bundle = load(dataset, seed=seed, scale=scale)
        state = prepared_state(bundle)
        row = [display_name(dataset)]
        cells = {}
        for mu in mu_values:
            platform = CrowdPlatform.with_oracle(bundle.gold_matches)
            result = Remp(RempConfig(mu=mu)).run(
                bundle.kb1, bundle.kb2, platform, state=state
            )
            f1 = evaluate_matches(result.matches, bundle.gold_matches).f1
            row += [percent(f1), str(result.questions_asked), str(result.num_loops)]
            cells[mu] = (f1, result.questions_asked, result.num_loops)
        rows.append(row)
        raw[dataset] = cells
    return ExperimentResult(
        "Table VII: F1 / #questions / #loops for different question thresholds mu",
        headers,
        rows,
        raw,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
