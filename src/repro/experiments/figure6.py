"""Figure 6: running time of Algorithms 1–3 w.r.t. portion of entity pairs.

Times partial-order pruning (Algorithm 1) on growing portions of the
candidate matches, and inferred-set discovery (Algorithm 2) plus greedy
question selection (Algorithm 3) on growing portions of the retained
matches, on the largest dataset (D-Y profile).
Expected shape: near-linear growth for Algorithms 1 and 2; Algorithm 3
flatter at small portions (inferred-set sizes saturate).
"""

from __future__ import annotations

import random
import time

from repro.core import Remp, RempConfig
from repro.core.consistency import estimate_all_consistencies
from repro.core.discovery import inferred_sets
from repro.core.er_graph import build_er_graph
from repro.core.propagation import build_probabilistic_graph
from repro.core.pruning import partial_order_pruning
from repro.core.selection import greedy_question_selection
from repro.core.vectors import VectorIndex
from repro.experiments.common import ExperimentResult, load

PORTIONS = (0.25, 0.5, 0.75, 1.0)


def run(
    scale: float = 1.0,
    seed: int = 0,
    dataset: str = "dbpedia_yago",
    portions: tuple[float, ...] = PORTIONS,
) -> ExperimentResult:
    bundle = load(dataset, seed=seed, scale=scale)
    config = RempConfig()
    state = Remp(config).prepare(bundle.kb1, bundle.kb2)
    rng = random.Random(seed)
    candidates = sorted(state.candidates.pairs)
    retained = sorted(state.retained)

    rows = []
    raw: dict = {"alg1": {}, "alg2": {}, "alg3": {}}
    for portion in portions:
        sample_c = set(rng.sample(candidates, int(portion * len(candidates))))
        index = VectorIndex({p: state.vector_index.vectors[p] for p in sample_c})
        start = time.perf_counter()
        partial_order_pruning(sample_c, index, config.k)
        alg1 = time.perf_counter() - start

        sample_r = set(rng.sample(retained, int(portion * len(retained))))
        graph = build_er_graph(bundle.kb1, bundle.kb2, sample_r)
        labels = {label for by_label in graph.groups.values() for label in by_label}
        consistencies = estimate_all_consistencies(
            bundle.kb1, bundle.kb2, labels, state.candidates.initial_matches
        )
        priors = {p: state.priors.get(p, 0.5) for p in sample_r}
        prob_graph = build_probabilistic_graph(
            graph, bundle.kb1, bundle.kb2, priors, consistencies, config
        )
        sources = [p for p in sorted(sample_r) if graph.groups.get(p)]
        start = time.perf_counter()
        sets = inferred_sets(prob_graph, sources, config.tau)
        alg2 = time.perf_counter() - start

        start = time.perf_counter()
        greedy_question_selection(sources, sets, priors, config.mu)
        alg3 = time.perf_counter() - start

        rows.append(
            [
                f"{int(portion * 100)}%",
                f"{alg1:.3f}s",
                f"{alg2:.3f}s",
                f"{alg3:.3f}s",
            ]
        )
        raw["alg1"][portion] = alg1
        raw["alg2"][portion] = alg2
        raw["alg3"][portion] = alg3
    return ExperimentResult(
        f"Figure 6: running time w.r.t. portion of entity pairs ({dataset})",
        ["Portion", "Algorithm 1", "Algorithm 2", "Algorithm 3"],
        rows,
        raw,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
