"""Figure 4: pair completeness of retained matches w.r.t. k-nearest neighbors.

Sweeps the pruning parameter k over {1, 4, 7, 10, 13} on all datasets.
Expected shape: pair completeness converges quickly with k on the cleaner
datasets and more slowly on D-Y, whose matches share few attributes.
"""

from __future__ import annotations

from repro.core import Remp, RempConfig
from repro.datasets import DATASET_NAMES
from repro.eval import pair_completeness
from repro.experiments.common import ExperimentResult, display_name, load, percent

K_VALUES = (1, 4, 7, 10, 13)


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: tuple[str, ...] = DATASET_NAMES,
    k_values: tuple[int, ...] = K_VALUES,
) -> ExperimentResult:
    headers = ["Dataset"] + [f"k={k}" for k in k_values]
    rows = []
    raw: dict = {}
    for dataset in datasets:
        bundle = load(dataset, seed=seed, scale=scale)
        series = []
        for k in k_values:
            state = Remp(RempConfig(k=k)).prepare(bundle.kb1, bundle.kb2)
            series.append(pair_completeness(state.retained, bundle.gold_matches))
        rows.append([display_name(dataset)] + [percent(v) for v in series])
        raw[dataset] = dict(zip(k_values, series))
    return ExperimentResult(
        "Figure 4: pair completeness w.r.t. k-nearest neighbors",
        headers,
        rows,
        raw,
    )


def main() -> None:
    result = run()
    print(result.render())
    from repro.eval.plots import ascii_plot

    series = {
        display_name(dataset): [values[k] for k in K_VALUES]
        for dataset, values in result.raw.items()
    }
    print()
    print(
        ascii_plot(
            series,
            x_labels=[str(k) for k in K_VALUES],
            title="Pair completeness vs k",
            y_format="{:.0%}",
        )
    )


if __name__ == "__main__":
    main()
