"""Figure 3: F1-score and #questions under varying worker error rates.

Simulated workers mislabel with probability 0.05 / 0.15 / 0.25 (following
HIKE's protocol).  Expected shape: every approach is roughly stable in F1
(robust truth inference), Remp keeps the best F1 and fewest questions.
"""

from __future__ import annotations

from repro.baselines import Corleone, Hike, Power
from repro.core import Remp
from repro.datasets import DATASET_NAMES
from repro.eval import evaluate_matches
from repro.experiments.common import (
    ExperimentResult,
    display_name,
    error_rate_platform,
    load,
    percent,
    prepared_state,
)

ERROR_RATES = (0.05, 0.15, 0.25)


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: tuple[str, ...] = DATASET_NAMES,
    error_rates: tuple[float, ...] = ERROR_RATES,
) -> ExperimentResult:
    headers = ["Dataset", "Error rate"]
    for approach in ("Remp", "HIKE", "POWER", "Corleone"):
        headers += [f"{approach} F1", f"{approach} #Q"]
    rows = []
    raw: dict = {}
    for dataset in datasets:
        bundle = load(dataset, seed=seed, scale=scale)
        state = prepared_state(bundle)
        for error_rate in error_rates:
            platform = error_rate_platform(bundle, error_rate, seed=seed)
            row = [display_name(dataset), f"{error_rate:.2f}"]
            cells: dict[str, tuple[float, int]] = {}

            remp_result = Remp().run(bundle.kb1, bundle.kb2, platform, state=state)
            quality = evaluate_matches(remp_result.matches, bundle.gold_matches)
            cells["Remp"] = (quality.f1, remp_result.questions_asked)

            for approach in (Hike(), Power(), Corleone()):
                platform.reset_billing()
                result = approach.run(state, platform)
                q = evaluate_matches(result.matches, bundle.gold_matches)
                cells[result.name] = (q.f1, result.questions_asked)

            for approach in ("Remp", "HIKE", "POWER", "Corleone"):
                f1, questions = cells[approach]
                row += [percent(f1), str(questions)]
            rows.append(row)
            raw[(dataset, error_rate)] = cells
    return ExperimentResult(
        "Figure 3: F1-score and #questions w.r.t. simulated worker error rates",
        headers,
        rows,
        raw,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
