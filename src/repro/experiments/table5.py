"""Table V: effectiveness of partial-order based pruning (k = 4).

Per dataset: candidate pair count and pair completeness, retained pair
count with the reduction ratio, forward ER-graph edge count, and the error
rate of the optimal monotone classifier on the retained pairs.
Expected shape: high pair completeness survives pruning, the error rate is
small, and the heterogeneous datasets prune the most.
"""

from __future__ import annotations

from repro.core import Remp
from repro.core.pruning import pruning_error_rate
from repro.datasets import DATASET_NAMES
from repro.eval import pair_completeness, reduction_ratio
from repro.experiments.common import ExperimentResult, display_name, load, percent


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: tuple[str, ...] = DATASET_NAMES,
    k: int = 4,
) -> ExperimentResult:
    headers = [
        "Dataset", "#Cand", "PC cand", "#Retained", "RR", "PC ret", "#Edges", "Err rate",
    ]
    rows = []
    raw: dict = {}
    for dataset in datasets:
        bundle = load(dataset, seed=seed, scale=scale)
        state = Remp().prepare(bundle.kb1, bundle.kb2)
        num_candidates = len(state.candidates.pairs)
        num_retained = len(state.retained)
        pc_cand = pair_completeness(state.candidates.pairs, bundle.gold_matches)
        pc_ret = pair_completeness(state.retained, bundle.gold_matches)
        rr = reduction_ratio(num_candidates, num_retained)
        edges = state.graph.num_forward_edges()
        error = pruning_error_rate(state.retained, state.vector_index, bundle.gold_matches)
        rows.append(
            [
                display_name(dataset),
                str(num_candidates), percent(pc_cand),
                str(num_retained), percent(rr), percent(pc_ret),
                str(edges), percent(error),
            ]
        )
        raw[dataset] = {
            "candidates": num_candidates,
            "pc_candidates": pc_cand,
            "retained": num_retained,
            "reduction_ratio": rr,
            "pc_retained": pc_ret,
            "edges": edges,
            "error_rate": error,
        }
    return ExperimentResult(
        f"Table V: effectiveness of partial order based pruning (k = {k})",
        headers,
        rows,
        raw,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
