"""Table IV: effectiveness of attribute matching, with vs without 1:1.

Precision/recall/F1 of the discovered attribute matches against the
dataset's gold attribute matches, on the two heterogeneous-schema datasets
(the other two have identical schemas, where matching is trivial).
Expected shape: the 1:1 constraint trades a little recall for much higher
precision.
"""

from __future__ import annotations

from repro.core.attributes import match_attributes
from repro.core.candidates import generate_candidates
from repro.eval import evaluate_matches
from repro.experiments.common import ExperimentResult, display_name, load, percent

HETEROGENEOUS = ("imdb_yago", "dbpedia_yago")


def run(
    scale: float = 1.0, seed: int = 0, datasets: tuple[str, ...] = HETEROGENEOUS
) -> ExperimentResult:
    headers = [
        "Dataset", "#Ref",
        "1:1 P", "1:1 R", "1:1 F1",
        "w/o P", "w/o R", "w/o F1",
    ]
    rows = []
    raw: dict = {}
    for dataset in datasets:
        bundle = load(dataset, seed=seed, scale=scale)
        gold = set(bundle.gold_attribute_matches)
        candidates = generate_candidates(bundle.kb1, bundle.kb2)
        with_constraint = match_attributes(
            bundle.kb1, bundle.kb2, candidates.initial_matches, one_to_one=True
        )
        without = match_attributes(
            bundle.kb1, bundle.kb2, candidates.initial_matches, one_to_one=False
        )
        q_with = evaluate_matches({(m.attr1, m.attr2) for m in with_constraint}, gold)
        q_without = evaluate_matches({(m.attr1, m.attr2) for m in without}, gold)
        rows.append(
            [
                display_name(dataset),
                str(len(gold)),
                percent(q_with.precision), percent(q_with.recall), percent(q_with.f1),
                percent(q_without.precision), percent(q_without.recall), percent(q_without.f1),
            ]
        )
        raw[dataset] = {"with": q_with, "without": q_without, "gold": len(gold)}
    return ExperimentResult(
        "Table IV: effectiveness of attribute matching (with vs w/o 1:1 constraint)",
        headers,
        rows,
        raw,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
