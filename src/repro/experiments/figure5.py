"""Figure 5: F1-score of Remp, MaxInf and MaxPr w.r.t. number of questions.

µ = 1, ground-truth labels (an oracle crowd), question budgets swept over
powers of two.  Expected shape: Remp's benefit function reaches any given
F1 with the fewest questions; MaxPr flattens early (it ignores inference
power), MaxInf wastes questions on likely non-matches.
"""

from __future__ import annotations

from repro.core import Remp, RempConfig
from repro.crowd import CrowdPlatform
from repro.datasets import DATASET_NAMES
from repro.eval import evaluate_matches
from repro.experiments.common import ExperimentResult, display_name, load, percent, prepared_state

BUDGETS = (1, 2, 4, 8, 16, 32, 64)
STRATEGIES = ("remp", "maxinf", "maxpr")


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: tuple[str, ...] = DATASET_NAMES,
    budgets: tuple[int, ...] = BUDGETS,
) -> ExperimentResult:
    headers = ["Dataset", "Strategy"] + [f"#Q<={b}" for b in budgets]
    rows = []
    raw: dict = {}
    for dataset in datasets:
        bundle = load(dataset, seed=seed, scale=scale)
        state = prepared_state(bundle)
        series: dict[str, list[float]] = {}
        for strategy in STRATEGIES:
            f1_curve = []
            for budget in budgets:
                config = RempConfig(mu=1, budget=budget, isolated_seed_questions=0)
                platform = CrowdPlatform.with_oracle(bundle.gold_matches)
                result = Remp(config).run(
                    bundle.kb1, bundle.kb2, platform, strategy=strategy, state=state
                )
                f1_curve.append(evaluate_matches(result.matches, bundle.gold_matches).f1)
            series[strategy] = f1_curve
            rows.append([display_name(dataset), strategy] + [percent(v) for v in f1_curve])
        raw[dataset] = series
    return ExperimentResult(
        "Figure 5: F1-score of Remp, MaxInf and MaxPr w.r.t. #questions (mu=1, oracle)",
        headers,
        rows,
        raw,
    )


def main() -> None:
    result = run()
    print(result.render())
    from repro.eval.plots import ascii_plot

    for dataset, series in result.raw.items():
        print()
        print(
            ascii_plot(
                series,
                x_labels=[str(b) for b in BUDGETS],
                title=f"{display_name(dataset)}: F1 vs #questions",
                y_format="{:.0%}",
            )
        )


if __name__ == "__main__":
    main()
