"""CART decision tree classifier (binary labels) on dense float features.

A compact, numpy-based implementation: greedy recursive partitioning on
axis-aligned thresholds chosen to minimize weighted Gini impurity.  Supports
feature subsampling per split (``max_features``) so it can serve as the base
learner of :class:`repro.ml.random_forest.RandomForestClassifier`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(slots=True)
class _Node:
    """A tree node; leaves carry a probability, internal nodes a split."""

    prob: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(pos: float, total: float) -> float:
    if total <= 0:
        return 0.0
    p = pos / total
    return 2.0 * p * (1.0 - p)


class DecisionTreeClassifier:
    """Binary CART classifier.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until purity or ``min_samples_split``.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    max_features:
        Number of features examined per split; ``None`` uses all, ``"sqrt"``
        uses ``ceil(sqrt(n_features))``.
    rng:
        Source of randomness for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        max_features: int | str | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self._rng = rng if rng is not None else np.random.default_rng()
        self._root: _Node | None = None
        self._n_features = 0

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Fit on feature matrix ``X`` (n×d) and 0/1 labels ``y`` (n)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be a 2-D array")
        if len(X) != len(y):
            raise ValueError("X and y must have the same length")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._n_features = X.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def _features_per_split(self) -> int:
        if self.max_features is None:
            return self._n_features
        if self.max_features == "sqrt":
            return max(1, math.ceil(math.sqrt(self._n_features)))
        return min(self._n_features, int(self.max_features))

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        n = len(y)
        pos = float(y.sum())
        prob = pos / n
        if (
            n < self.min_samples_split
            or pos == 0.0
            or pos == n
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return _Node(prob=prob)
        split = self._best_split(X, y)
        if split is None:
            return _Node(prob=prob)
        feature, threshold = split
        mask = X[:, feature] <= threshold
        left = self._build(X[mask], y[mask], depth + 1)
        right = self._build(X[~mask], y[~mask], depth + 1)
        return _Node(prob=prob, feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float] | None:
        n, d = X.shape
        k = self._features_per_split()
        if k < d:
            features = self._rng.choice(d, size=k, replace=False)
        else:
            features = np.arange(d)
        total_pos = float(y.sum())
        best_impurity = _gini(total_pos, n)
        best: tuple[int, float] | None = None
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            pos_cum = np.cumsum(ys)
            # Candidate split points lie between distinct consecutive values.
            distinct = np.nonzero(np.diff(xs) > 0)[0]
            if len(distinct) == 0:
                continue
            left_n = distinct + 1
            left_pos = pos_cum[distinct]
            right_n = n - left_n
            right_pos = total_pos - left_pos
            impurity = (
                left_n * (2 * (left_pos / left_n) * (1 - left_pos / left_n))
                + right_n * (2 * (right_pos / right_n) * (1 - right_pos / right_n))
            ) / n
            idx = int(np.argmin(impurity))
            if impurity[idx] < best_impurity - 1e-12:
                best_impurity = float(impurity[idx])
                cut = distinct[idx]
                best = (int(feature), float((xs[cut] + xs[cut + 1]) / 2.0))
        return best

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-row probability of the positive class."""
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        out = np.empty(len(X), dtype=float)
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prob
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """0/1 predictions at the 0.5 probability cut."""
        return (self.predict_proba(X) >= 0.5).astype(int)

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        return walk(self._root)
