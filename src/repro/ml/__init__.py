"""Machine-learning substrate: CART decision trees and random forests.

The paper trains a scikit-learn random forest with default parameters to
classify isolated entity pairs (Section VII-B), and the Corleone baseline is
built around active learning with random forests.  scikit-learn is not
available offline, so this package provides a from-scratch implementation
with the same default behaviour (100 trees, Gini impurity, sqrt feature
subsampling, bootstrap sampling).
"""

from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.random_forest import RandomForestClassifier

__all__ = ["DecisionTreeClassifier", "RandomForestClassifier"]
