"""Random forest classifier: bagged CART trees with feature subsampling.

Mirrors scikit-learn's default configuration (100 trees, Gini, sqrt
features, bootstrap) since the paper trains the isolated-pair classifier
"with default parameter".
"""

from __future__ import annotations

import numpy as np

from repro.ml.decision_tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees for binary classification.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth:
        Per-tree depth cap (``None`` = unlimited).
    max_features:
        Features examined per split; default ``"sqrt"``.
    seed:
        Seed for the bootstrap and feature subsampling randomness.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        max_features: int | str | None = "sqrt",
        min_samples_split: int = 2,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_split = min_samples_split
        self.seed = seed
        self._trees: list[DecisionTreeClassifier] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples of (X, y)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.seed)
        n = len(X)
        self._trees = []
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=self.max_features,
                rng=rng,
            )
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean positive-class probability across trees."""
        if not self._trees:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        acc = np.zeros(len(X), dtype=float)
        for tree in self._trees:
            acc += tree.predict_proba(X)
        return acc / len(self._trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """0/1 predictions at the 0.5 probability cut."""
        return (self.predict_proba(X) >= 0.5).astype(int)
