"""Incremental KB-delta matching.

A production deployment rarely matches two *frozen* KBs — upstream edits
arrive continuously.  This package makes a KB edit cost what it touches
rather than what the KBs contain:

* :mod:`repro.stream.delta` — :class:`KBDelta`: composable, serializable
  add/remove/update edits to a two-KB world, with content fingerprints
  for staleness detection.
* :mod:`repro.stream.incremental` — ``incremental_prepare``: diff a
  cached :class:`~repro.core.PreparedState` against a delta, recomputing
  candidates, vectors, pruning and ER-graph structure only inside the
  affected entity closures; the spliced state serializes identically to
  a from-scratch prepare.
* :mod:`repro.stream.runner` — :class:`StreamRunner`: unit-wise (one
  entity-closure component each) execution with content-derived seeds
  and localized slices, so clean units' recorded outcomes are reused
  verbatim and the merged result is byte-identical to a from-scratch
  run on the post-delta KB pair — the equivalence oracle behind
  ``tests/test_stream_equivalence.py``.

:mod:`repro.service` exposes this as the ``update(run_id, delta)``
lifecycle verb; the CLI as ``repro update`` and ``repro run --since``.
"""

from repro.stream.delta import (
    DeltaConflictError,
    DeltaOp,
    KBDelta,
    compose_deltas,
    kb_pair_fingerprint,
)
from repro.stream.incremental import IncrementalPrepared, incremental_prepare
from repro.stream.runner import (
    StreamOutcome,
    StreamRunner,
    unit_record_from_doc,
    unit_record_to_doc,
)

__all__ = [
    "DeltaConflictError",
    "DeltaOp",
    "IncrementalPrepared",
    "KBDelta",
    "StreamOutcome",
    "StreamRunner",
    "compose_deltas",
    "incremental_prepare",
    "kb_pair_fingerprint",
    "unit_record_from_doc",
    "unit_record_to_doc",
]
