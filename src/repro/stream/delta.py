"""The KB-delta model: composable, serializable edits to a two-KB world.

A :class:`KBDelta` is an ordered list of primitive operations — add or
remove an entity, an attribute triple or a relationship triple, in either
KB — plus the simulation-side bookkeeping an evolving gold standard needs
(``gold_add`` / ``gold_remove``; the matcher never sees it, only the
simulated crowd and the evaluation do).  Deltas compose
(``first.compose(second)`` applies first's ops, then second's), round-trip
through plain JSON documents, and optionally pin the fingerprint of the
KB pair they apply to, so a stale delta is rejected instead of silently
corrupting a cached state.

``apply`` never mutates its inputs: it deep-copies both KBs, replays the
ops and returns the new pair.  :func:`kb_pair_fingerprint` is the stable
identity of a KB pair used throughout the stream layer (run lineage,
prepared-state cache keys, conflict detection).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.kb.io import kb_to_doc
from repro.kb.model import KnowledgeBase

Pair = tuple[str, str]

#: Primitive operation kinds, in their canonical spelling.
OP_KINDS = (
    "add_entity",
    "remove_entity",
    "add_attribute",
    "remove_attribute",
    "add_relation",
    "remove_relation",
)

#: Schema version written into (and required of) delta documents.
DELTA_VERSION = 1


def kb_pair_fingerprint(kb1: KnowledgeBase, kb2: KnowledgeBase) -> str:
    """Stable digest identifying the *content* of a KB pair.

    Equal KB pairs (same entities and triples, regardless of insertion
    order or mutation history) produce equal fingerprints.
    """
    blob = json.dumps(
        [kb_to_doc(kb1), kb_to_doc(kb2)],
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class DeltaOp:
    """One primitive edit.

    ``kb`` selects the target KB (1 or 2).  ``subject`` is the entity the
    op touches; ``prop``/``value`` are the triple payload for attribute
    and relation ops (``value`` is the related entity for relation ops,
    the literal for attribute ops, and the optional label for
    ``add_entity``).
    """

    kind: str
    kb: int
    subject: str
    prop: str | None = None
    value: object = None

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown delta op kind {self.kind!r}")
        if self.kb not in (1, 2):
            raise ValueError(f"delta op kb must be 1 or 2, got {self.kb!r}")

    def apply(self, kb: KnowledgeBase) -> None:
        """Replay this op against the selected KB (already chosen by kb index)."""
        if self.kind == "add_entity":
            kb.add_entity(self.subject, label=self.value)
        elif self.kind == "remove_entity":
            kb.remove_entity(self.subject)
        elif self.kind == "add_attribute":
            kb.add_attribute_triple(self.subject, self.prop, self.value)
        elif self.kind == "remove_attribute":
            kb.remove_attribute_triple(self.subject, self.prop, self.value)
        elif self.kind == "add_relation":
            kb.add_relationship_triple(self.subject, self.prop, str(self.value))
        else:  # remove_relation
            kb.remove_relationship_triple(self.subject, self.prop, str(self.value))

    def to_doc(self) -> dict:
        doc = {"kind": self.kind, "kb": self.kb, "subject": self.subject}
        if self.prop is not None:
            doc["prop"] = self.prop
        if self.value is not None:
            doc["value"] = self.value
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "DeltaOp":
        return cls(
            kind=doc["kind"],
            kb=doc["kb"],
            subject=doc["subject"],
            prop=doc.get("prop"),
            value=doc.get("value"),
        )


@dataclass(frozen=True, slots=True)
class KBDelta:
    """An ordered batch of KB edits, with optional gold-standard updates.

    ``parent_fingerprint`` (when set) pins the KB pair this delta was
    authored against; appliers compare it to the pair at hand and refuse
    on mismatch.  ``gold_add`` / ``gold_remove`` update the *simulation's*
    ground truth — the matcher never reads them.
    """

    ops: tuple[DeltaOp, ...] = ()
    gold_add: tuple[Pair, ...] = ()
    gold_remove: tuple[Pair, ...] = ()
    parent_fingerprint: str | None = None

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def touched_entities(self) -> tuple[set[str], set[str]]:
        """Entities directly edited in KB1 and KB2 (the dirty seed sets).

        Every entity named by an op counts, including the object side of
        relation edits — a relation change alters both endpoints' value
        sets, hence both endpoints' ER-graph neighborhoods.
        """
        touched1: set[str] = set()
        touched2: set[str] = set()
        for op in self.ops:
            bucket = touched1 if op.kb == 1 else touched2
            bucket.add(op.subject)
            if op.kind in ("add_relation", "remove_relation"):
                bucket.add(str(op.value))
        return touched1, touched2

    def apply(
        self, kb1: KnowledgeBase, kb2: KnowledgeBase, *, check_fingerprint: bool = True
    ) -> tuple[KnowledgeBase, KnowledgeBase]:
        """Apply every op to deep copies of the pair; returns the new pair."""
        if check_fingerprint and self.parent_fingerprint is not None:
            actual = kb_pair_fingerprint(kb1, kb2)
            if actual != self.parent_fingerprint:
                raise DeltaConflictError(
                    f"delta was authored against KB pair {self.parent_fingerprint}, "
                    f"but the pair at hand has fingerprint {actual}"
                )
        new1, new2 = kb1.copy(), kb2.copy()
        for op in self.ops:
            op.apply(new1 if op.kb == 1 else new2)
        return new1, new2

    def apply_gold(self, gold: set[Pair]) -> set[Pair]:
        """The gold standard after this delta (simulation bookkeeping)."""
        return (set(gold) - set(self.gold_remove)) | set(self.gold_add)

    def compose(self, other: "KBDelta") -> "KBDelta":
        """``self`` then ``other`` as a single delta.

        Keeps ``self``'s parent fingerprint: the composition applies to
        the same base pair ``self`` does.  Gold edits fold left-to-right
        (an add in ``self`` survives unless ``other`` removes it).
        """
        gold_add = (set(self.gold_add) - set(other.gold_remove)) | set(other.gold_add)
        gold_remove = (set(self.gold_remove) - set(other.gold_add)) | set(
            other.gold_remove
        )
        return KBDelta(
            ops=self.ops + other.ops,
            gold_add=tuple(sorted(gold_add)),
            gold_remove=tuple(sorted(gold_remove)),
            parent_fingerprint=self.parent_fingerprint,
        )

    # ------------------------------------------------------------------
    def to_doc(self) -> dict:
        return {
            "version": DELTA_VERSION,
            "ops": [op.to_doc() for op in self.ops],
            "gold_add": sorted([left, right] for left, right in self.gold_add),
            "gold_remove": sorted([left, right] for left, right in self.gold_remove),
            "parent_fingerprint": self.parent_fingerprint,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "KBDelta":
        version = doc.get("version")
        if version != DELTA_VERSION:
            raise ValueError(
                f"unsupported KBDelta document version {version!r}; "
                f"expected {DELTA_VERSION}"
            )
        return cls(
            ops=tuple(DeltaOp.from_doc(op) for op in doc.get("ops", [])),
            gold_add=tuple((left, right) for left, right in doc.get("gold_add", [])),
            gold_remove=tuple(
                (left, right) for left, right in doc.get("gold_remove", [])
            ),
            parent_fingerprint=doc.get("parent_fingerprint"),
        )


class DeltaConflictError(ValueError):
    """A delta's parent fingerprint does not match the KB pair at hand."""


def compose_deltas(deltas: list[KBDelta]) -> KBDelta:
    """Fold a list of deltas into one (empty list composes to a no-op)."""
    composed = deltas[0] if deltas else KBDelta()
    for delta in deltas[1:]:
        composed = composed.compose(delta)
    return composed
