"""Incremental re-preparation: diff a cached PreparedState against a delta.

``incremental_prepare`` produces a :class:`~repro.core.PreparedState` for
the post-delta KB pair that is *identical* (same serialized document) to
what a from-scratch ``Remp.prepare`` would build — while recomputing only
inside the regions a delta can actually influence:

* **Candidates** couple through shared labels: only rows/columns of
  entities the delta touched are regenerated (against full token indexes,
  which are linear to rebuild — the quadratic-ish pair scoring is what we
  skip).
* **Attribute matching** is global but cheap (it only reads ``M_in``
  pairs), so it is recomputed outright; if the matches differ from the
  cached ones, every similarity vector is invalidated and the preparer
  falls back to a full re-prepare — correctness first.
* **Vectors, pruning** couple through entity-sharing chains: pruning
  blocks are per-entity, and block survivors feed the next block, so the
  dirty region is the *candidate entity closure* (union–find over
  old ∪ new candidate pairs linked by a shared entity).  Pruning is
  re-run on exactly the dirty closures; clean closures keep their
  retained verdicts.
* **The ER graph** is spliced: vertices inside dirty closures are rebuilt
  wholesale, and the only clean vertices that can change are those
  relation-adjacent to a pair whose retained status flipped — found via
  the KB neighborhood indexes and rebuilt individually.

The returned ``changed`` set (every pair whose prepared artifacts may
differ, including removed pairs) is the dirty seed the stream runner
expands into dirty entity-closure units; ``changed is None`` signals a
full fallback (everything dirty).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.runtime import TIMINGS
from repro.core.attributes import match_attributes
from repro.obs import runtime as obs
from repro.obs.logging import get_logger
from repro.core.candidates import CandidateSet, _token_index
from repro.core.config import RempConfig
from repro.core.er_graph import INVERSE_PREFIX, ERGraph
from repro.core.isolated import attribute_signature
from repro.core.pipeline import PreparedState, Remp
from repro.core.pruning import partial_order_pruning
from repro.core.vectors import VectorIndex, build_similarity_vectors
from repro.kb.model import KnowledgeBase
from repro.stream.delta import KBDelta, kb_pair_fingerprint

Pair = tuple[str, str]

log = get_logger("stream.incremental")


@dataclass(slots=True)
class IncrementalPrepared:
    """Outcome of one incremental re-preparation."""

    state: PreparedState
    #: Pairs (old or new) whose prepared artifacts may differ from the
    #: parent state's; ``None`` means a full fallback — everything dirty.
    changed: set[Pair] | None
    #: Content fingerprint of the post-delta KB pair.
    fingerprint: str
    #: Whether attribute matching changed and forced a full re-prepare.
    fell_back: bool = False


class _PairUnionFind:
    """Path-halving union–find keyed by candidate pair."""

    def __init__(self) -> None:
        self._parent: dict[Pair, Pair] = {}

    def find(self, item: Pair) -> Pair:
        parent = self._parent.setdefault(item, item)
        while parent != item:
            grandparent = self._parent[parent]
            self._parent[item] = grandparent
            item, parent = parent, self._parent.setdefault(grandparent, grandparent)
        return item

    def union(self, a: Pair, b: Pair) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            if root_b < root_a:
                root_a, root_b = root_b, root_a
            self._parent[root_b] = root_a


def _entity_neighbors(kb: KnowledgeBase, entity: str) -> set[str]:
    """Entities relation-adjacent to ``entity`` in either direction."""
    neighbors: set[str] = set()
    for targets in kb.entity_relations(entity).values():
        neighbors.update(targets)
    for sources in kb.entity_inverse_relations(entity).values():
        neighbors.update(sources)
    return neighbors


def _dirty_entities(
    delta: KBDelta, kb1: KnowledgeBase, kb2: KnowledgeBase
) -> tuple[set[str], set[str]]:
    """Touched entities, widened by removal fallout.

    Removing an entity silently removes the relationship triples of its
    neighbors too, so those neighbors' value sets — hence their ER-graph
    groups and consistency statistics — change without the delta naming
    them.  They are read off the *pre-delta* KBs, where the edges still
    exist.
    """
    dirty1, dirty2 = delta.touched_entities
    for op in delta.ops:
        if op.kind == "remove_entity":
            kb, bucket = (kb1, dirty1) if op.kb == 1 else (kb2, dirty2)
            bucket.update(_entity_neighbors(kb, op.subject))
    return dirty1, dirty2


def _candidate_row(
    entity: str,
    tokens: frozenset[str],
    other_tokens: dict[str, frozenset[str]],
    other_inverted: dict[str, set[str]],
    threshold: float,
) -> dict[str, float]:
    """Jaccard scores of one entity against the other KB, off its index.

    The arithmetic mirrors ``generate_candidates`` exactly (integer
    intersection counts, one float division), so recomputed scores are
    bit-equal to a from-scratch run's.
    """
    intersections: dict[str, int] = {}
    for token in tokens:
        for other in other_inverted.get(token, ()):
            intersections[other] = intersections.get(other, 0) + 1
    size = len(tokens)
    row: dict[str, float] = {}
    for other, shared in intersections.items():
        sim = shared / (size + len(other_tokens[other]) - shared)
        if sim >= threshold:
            row[other] = sim
    return row


def _splice_candidates(
    old: CandidateSet,
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    dirty1: set[str],
    dirty2: set[str],
    threshold: float,
) -> CandidateSet:
    """Candidates for the new KB pair, recomputing only dirty rows/columns."""
    tokens1, inverted1 = _token_index(kb1)
    tokens2, inverted2 = _token_index(kb2)

    pairs = {p for p in old.pairs if p[0] not in dirty1 and p[1] not in dirty2}
    priors = {p: old.priors[p] for p in pairs}
    initial = {p for p in old.initial_matches if p in pairs}

    for entity1 in sorted(dirty1 & kb1.entities):
        tset = tokens1.get(entity1)
        if tset is None:
            continue
        for entity2, sim in _candidate_row(
            entity1, tset, tokens2, inverted2, threshold
        ).items():
            pairs.add((entity1, entity2))
            priors[(entity1, entity2)] = sim
    for entity2 in sorted(dirty2 & kb2.entities):
        tset = tokens2.get(entity2)
        if tset is None:
            continue
        for entity1, sim in _candidate_row(
            entity2, tset, tokens1, inverted1, threshold
        ).items():
            pairs.add((entity1, entity2))
            priors[(entity1, entity2)] = sim

    # Exact-raw-label pass (M_in plus the empty-token special case),
    # restricted to the dirty rows and columns.
    labels1: dict[str, set[str]] = {}
    for entity in kb1.entities:
        for label in kb1.labels(entity):
            labels1.setdefault(label, set()).add(entity)
    labels2: dict[str, set[str]] = {}
    for entity in kb2.entities:
        for label in kb2.labels(entity):
            labels2.setdefault(label, set()).add(entity)

    def exact_label_pair(entity1: str, entity2: str) -> None:
        pair = (entity1, entity2)
        if pair in pairs:
            initial.add(pair)
        elif entity1 not in tokens1 or entity2 not in tokens2:
            pairs.add(pair)
            priors[pair] = 1.0
            initial.add(pair)

    for entity1 in sorted(dirty1 & kb1.entities):
        for label in kb1.labels(entity1):
            for entity2 in labels2.get(label, ()):
                exact_label_pair(entity1, entity2)
    for entity2 in sorted(dirty2 & kb2.entities):
        for label in kb2.labels(entity2):
            for entity1 in labels1.get(label, ()):
                exact_label_pair(entity1, entity2)

    return CandidateSet(pairs=pairs, priors=priors, initial_matches=initial)


def _dirty_closure(
    old_pairs: set[Pair], new_pairs: set[Pair], dirty1: set[str], dirty2: set[str]
) -> set[Pair]:
    """All old ∪ new candidate pairs entity-chained to a touched entity.

    Pruning blocks are per-entity and block survivors feed the opposite
    side's blocks, so pruning influence travels exactly along shared
    entities — the closure is the finest region outside which every
    pruning verdict provably stands.
    """
    universe = old_pairs | new_pairs
    uf = _PairUnionFind()
    anchors_left: dict[str, Pair] = {}
    anchors_right: dict[str, Pair] = {}
    for pair in universe:
        uf.find(pair)
        for key, bucket in ((pair[0], anchors_left), (pair[1], anchors_right)):
            anchor = bucket.setdefault(key, pair)
            if anchor != pair:
                uf.union(anchor, pair)
    seeds = {p for p in universe if p[0] in dirty1 or p[1] in dirty2}
    dirty_roots = {uf.find(p) for p in seeds}
    return {p for p in universe if uf.find(p) in dirty_roots}


def _vertex_groups(
    kb1: KnowledgeBase, kb2: KnowledgeBase, vertex: Pair, retained: set[Pair]
) -> dict:
    """One vertex's neighbor groups, mirroring ``build_er_graph`` exactly."""
    entity1, entity2 = vertex
    by_label: dict = {}
    directions = (
        (kb1.entity_relations(entity1), kb2.entity_relations(entity2), ""),
        (
            kb1.entity_inverse_relations(entity1),
            kb2.entity_inverse_relations(entity2),
            INVERSE_PREFIX,
        ),
    )
    for rels1, rels2, prefix in directions:
        for r1, targets1 in rels1.items():
            for r2, targets2 in rels2.items():
                members = {
                    (t1, t2) for t1 in targets1 for t2 in targets2 if (t1, t2) in retained
                }
                if members:
                    by_label[(prefix + r1, prefix + r2)] = members
    return by_label


def _signature(state_kb1, state_kb2, pair, attribute_matches):
    presence = tuple(
        bool(state_kb1.attribute_values(pair[0], m.attr1))
        and bool(state_kb2.attribute_values(pair[1], m.attr2))
        for m in attribute_matches
    )
    return attribute_signature(presence)


def incremental_prepare(
    state: PreparedState,
    delta: KBDelta,
    config: RempConfig | None = None,
    *,
    check_fingerprint: bool = True,
) -> IncrementalPrepared:
    """Diff ``state`` against ``delta``; splice a post-delta prepared state.

    The result's serialized document equals a from-scratch
    ``Remp(config).prepare`` on the post-delta KBs (the invariant the
    stream equivalence suite pins down), but only dirty entity closures
    are recomputed.  ``config`` must be the configuration ``state`` was
    prepared under.
    """
    config = config or RempConfig()
    kb1, kb2 = delta.apply(state.kb1, state.kb2, check_fingerprint=check_fingerprint)
    fingerprint = kb_pair_fingerprint(kb1, kb2)
    dirty1, dirty2 = _dirty_entities(delta, state.kb1, state.kb2)

    with TIMINGS.timed("stream.splice_candidates"):
        candidates = _splice_candidates(
            state.candidates, kb1, kb2, dirty1, dirty2, config.label_similarity_threshold
        )
    with TIMINGS.timed("stream.attributes"):
        attribute_matches = match_attributes(
            kb1, kb2, candidates.initial_matches, literal_threshold=config.literal_threshold
        )
    if attribute_matches != state.attribute_matches:
        # Every vector component shifts when the attribute alignment
        # does; nothing downstream of the candidate set survives.
        obs.count("stream.prepare.full_fallbacks")
        log.info("attribute alignment changed; falling back to full prepare")
        full = Remp(config).prepare(kb1, kb2)
        return IncrementalPrepared(
            state=full, changed=None, fingerprint=fingerprint, fell_back=True
        )

    closure = _dirty_closure(state.candidates.pairs, candidates.pairs, dirty1, dirty2)
    seeds = {p for p in candidates.pairs if p[0] in dirty1 or p[1] in dirty2}

    # Vectors: only pairs whose entities were touched can change (the
    # attribute alignment is unchanged); removed pairs drop out.
    with TIMINGS.timed("stream.vectors"):
        vectors = {
            p: v for p, v in state.vector_index.vectors.items() if p in candidates.pairs
        }
        if seeds:
            raw = build_similarity_vectors(
                kb1, kb2, seeds, attribute_matches, config.literal_threshold
            )
            for pair, vector in raw.items():
                vectors[pair] = (candidates.priors.get(pair, 0.0),) + vector
        index = VectorIndex(vectors)

    # Pruning: re-run on the dirty closures only.  Blocks are per-entity
    # and closures are entity-closed, so the local verdicts coincide with
    # a global run's.
    with TIMINGS.timed("stream.pruning"):
        dirty_new = closure & candidates.pairs
        retained = (state.retained - closure) | partial_order_pruning(
            dirty_new, index, config.k
        )

    # ER graph: rebuild dirty-closure vertices wholesale, then the clean
    # vertices relation-adjacent to a pair whose retained status flipped.
    with TIMINGS.timed("stream.graph_splice"):
        changed_retained = state.retained ^ retained
        graph = ERGraph(vertices=set(retained))
        rebuild = retained & closure
        for vertex in retained - closure:
            groups = state.graph.groups.get(vertex)
            if groups is not None:
                graph.groups[vertex] = groups
        by_left: dict[str, list[Pair]] = {}
        for pair in retained - closure:
            by_left.setdefault(pair[0], []).append(pair)
        affected: set[Pair] = set()
        for a, b in changed_retained:
            near1 = _entity_neighbors(kb1, a)
            near2 = _entity_neighbors(kb2, b)
            if not near1 or not near2:
                continue
            for entity1 in near1:
                for pair in by_left.get(entity1, ()):
                    if pair[1] in near2:
                        affected.add(pair)
        group_changed: set[Pair] = set()
        for vertex in sorted(rebuild | affected):
            groups = _vertex_groups(kb1, kb2, vertex, retained)
            if vertex in affected and groups != state.graph.groups.get(vertex, {}):
                group_changed.add(vertex)
            if groups:
                graph.groups[vertex] = groups
            else:
                graph.groups.pop(vertex, None)

    signatures = {}
    for pair in retained:
        if pair in seeds or pair not in state.signatures:
            signatures[pair] = _signature(kb1, kb2, pair, attribute_matches)
        else:
            signatures[pair] = state.signatures[pair]
    priors = {
        pair: candidates.priors.get(pair, config.default_prior) for pair in retained
    }

    new_state = PreparedState(
        kb1=kb1,
        kb2=kb2,
        candidates=candidates,
        attribute_matches=attribute_matches,
        vector_index=index,
        retained=retained,
        graph=graph,
        signatures=signatures,
        priors=priors,
        isolated=graph.isolated_vertices(),
    )
    changed = closure | group_changed
    obs.count("stream.prepare.dirty_pairs", len(changed))
    log.info(
        "incremental prepare: %d dirty pairs of %d retained",
        len(changed),
        len(retained),
    )
    return IncrementalPrepared(
        state=new_state,
        changed=changed,
        fingerprint=fingerprint,
    )
