"""The delta-aware run driver.

:class:`StreamRunner` executes a prepared state as *units* — one graph
shard per entity-closure component (``max_shard_size=1``), localized
slices, content-derived seeds — so every unit's outcome is a pure
function of its slice, independent of what the rest of the KB looks
like.  That purity is the whole trick:

* ``run_full`` executes every unit; its merged result is the stream
  layer's *reference semantics* for a KB pair.
* ``run_incremental`` takes the previous run's content-keyed
  :class:`~repro.partition.UnitRecord` map plus the incremental
  preparer's dirty set, restores every clean unit verbatim and executes
  only dirty or new ones — and merges to a result byte-identical to
  ``run_full`` on the same state (the equivalence oracle pinned down by
  ``tests/test_stream_equivalence.py``), for every worker count.

Billing is two-ledger: the merged :class:`~repro.core.RempResult` keeps
the *logical* question count (what a from-scratch run would bill), while
:class:`StreamOutcome.questions_new` counts only questions whose labels
are not already in the lineage's answer logs — the actual crowd spend of
an incremental update.  No question recorded for a surviving (clean)
unit is ever counted as new spend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import RempConfig
from repro.core.pipeline import PreparedState, RempResult
from repro.obs import runtime as obs
from repro.obs.logging import get_logger
from repro.partition.partitioner import PartitionPlan, partition_state
from repro.partition.runner import CrowdSpec, ParallelRunner, UnitRecord
from repro.store.serialize import result_from_doc, result_to_doc

Pair = tuple[str, str]

log = get_logger("stream")


def unit_record_to_doc(record: UnitRecord) -> dict:
    return {
        "key": record.key,
        "kind": record.kind,
        "result": result_to_doc(record.result),
        "snapshot": record.snapshot,
        "answer_log": record.answer_log,
    }


def unit_record_from_doc(doc: dict) -> UnitRecord:
    return UnitRecord(
        key=doc["key"],
        kind=doc["kind"],
        result=result_from_doc(doc["result"]),
        snapshot=doc["snapshot"],
        answer_log=doc["answer_log"],
    )


@dataclass(slots=True)
class StreamOutcome:
    """One stream run: merged result, per-unit records, spend accounting."""

    result: RempResult
    #: Content-keyed durable unit outcomes (the next update's reuse input).
    records: dict[str, UnitRecord]
    reused_keys: set[str] = field(default_factory=set)
    executed_keys: set[str] = field(default_factory=set)
    #: Questions billed this run whose labels were NOT in the lineage's
    #: answer logs — the incremental crowd spend.
    questions_new: int = 0

    @property
    def questions_total(self) -> int:
        """The logical (from-scratch-equivalent) question count."""
        return self.result.questions_asked


def _log_questions(answer_log: list) -> set[Pair]:
    return {(entry["question"][0], entry["question"][1]) for entry in answer_log}


class StreamRunner:
    """Unit-wise execution of a prepared state with cross-run reuse.

    Parameters mirror :class:`~repro.partition.ParallelRunner`; a store +
    run id enable per-unit checkpointing, so an interrupted update
    resumes without re-asking questions.  ``config.budget`` is rejected:
    a global budget split couples clean units to dirty ones (their
    allocation shifts with every delta), which would break reuse.
    """

    def __init__(
        self,
        config: RempConfig | None = None,
        *,
        seed: int = 0,
        workers: int = 1,
        strategy: str = "remp",
        store=None,
        run_id: str | None = None,
        on_event=None,
    ):
        self.config = config or RempConfig()
        if self.config.budget is not None:
            raise ValueError(
                "stream runs do not support a question budget: the global "
                "split would re-allocate across deltas and invalidate "
                "clean-unit reuse"
            )
        self.seed = seed
        self.workers = workers
        self.strategy = strategy
        self._store = store
        self._run_id = run_id
        self._on_event = on_event

    def plan(self, state: PreparedState) -> PartitionPlan:
        """One graph shard per entity-closure component."""
        return partition_state(state, max_shard_size=1)

    # ------------------------------------------------------------------
    def run_full(self, state: PreparedState, crowd: CrowdSpec) -> StreamOutcome:
        """Execute every unit from scratch — the reference semantics."""
        return self._run(state, crowd, dirty=None, reuse=None)

    def run_incremental(
        self,
        state: PreparedState,
        crowd: CrowdSpec,
        *,
        dirty: set[Pair] | None,
        reuse: dict[str, UnitRecord] | None,
    ) -> StreamOutcome:
        """Execute only dirty units; restore clean ones from ``reuse``.

        ``dirty=None`` (the incremental preparer's full-fallback signal)
        executes everything, exactly like :meth:`run_full`.
        """
        if dirty is None or not reuse:
            return self._run(state, crowd, dirty=None, reuse=None, lineage=reuse)
        return self._run(state, crowd, dirty=set(dirty), reuse=dict(reuse))

    # ------------------------------------------------------------------
    def _run(
        self,
        state: PreparedState,
        crowd: CrowdSpec,
        *,
        dirty: set[Pair] | None,
        reuse: dict[str, UnitRecord] | None,
        lineage: dict[str, UnitRecord] | None = None,
    ) -> StreamOutcome:
        runner = ParallelRunner(
            self.config,
            seed=self.seed,
            workers=self.workers,
            strategy=self.strategy,
            max_shard_size=1,
            store=self._store,
            run_id=self._run_id,
            on_event=self._on_event,
            localize=True,
            content_seeds=True,
            dirty=dirty,
            reuse=reuse,
            collect_records=True,
        )
        result = runner.run(state, crowd)
        records = runner.unit_records
        reused_keys = set(runner.reused_keys)
        executed_keys = set(records) - reused_keys

        # New spend: labels collected by executed units that no ancestor
        # run had already recorded.  (Reused units are free by
        # construction; re-asked questions replay to identical labels
        # because per-question answers are pure in the platform seed.)
        inherited: set[Pair] = set()
        for source in (reuse or {}), (lineage or {}):
            for record in source.values():
                inherited |= _log_questions(record.answer_log)
        fresh: set[Pair] = set()
        for key in executed_keys:
            fresh |= _log_questions(records[key].answer_log)
        questions_new = len(fresh - inherited)

        obs.count("stream.units.reused", len(reused_keys))
        obs.count("stream.units.executed", len(executed_keys))
        obs.count("stream.questions.new", questions_new)
        if records:
            obs.gauge(
                "stream.unit_reuse_rate", round(len(reused_keys) / len(records), 6)
            )
        obs.publish(
            "stream.summary",
            units=len(records),
            reused=len(reused_keys),
            executed=len(executed_keys),
            questions_new=questions_new,
        )
        log.info(
            "stream run: %d units (%d reused, %d executed), %d new questions",
            len(records),
            len(reused_keys),
            len(executed_keys),
            questions_new,
        )
        return StreamOutcome(
            result=result,
            records=records,
            reused_keys=reused_keys,
            executed_keys=executed_keys,
            questions_new=questions_new,
        )
