"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print Table II-style statistics for the four synthetic profiles.
``run``
    Run the Remp pipeline on one dataset and report quality and cost.
``experiment``
    Regenerate one paper artifact (``table3`` … ``figure6``).
``export``
    Write a generated dataset's two KBs and gold standard to disk.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import Remp, RempConfig
from repro.crowd import CrowdPlatform
from repro.datasets import DATASET_NAMES, load_dataset
from repro.eval import evaluate_matches
from repro.kb import describe, save_kb_json


def _cmd_datasets(args: argparse.Namespace) -> int:
    for name in DATASET_NAMES:
        bundle = load_dataset(name, seed=args.seed, scale=args.scale)
        print(f"== {name}: {bundle.num_matches} gold matches")
        print("  ", describe(bundle.kb1).as_row())
        print("  ", describe(bundle.kb2).as_row())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    bundle = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    config = RempConfig(mu=args.mu, tau=args.tau, budget=args.budget)
    if args.error_rate > 0:
        platform = CrowdPlatform.with_simulated_workers(
            bundle.gold_matches, error_rate=args.error_rate, seed=args.seed
        )
    else:
        platform = CrowdPlatform.with_oracle(bundle.gold_matches)
    result = Remp(config).run(bundle.kb1, bundle.kb2, platform)
    quality = evaluate_matches(result.matches, bundle.gold_matches)
    print(quality.as_row())
    print(
        f"questions={result.questions_asked} loops={result.num_loops} "
        f"labeled={len(result.labeled_matches)} inferred={len(result.inferred_matches)} "
        f"isolated={len(result.isolated_matches)}"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    result = module.run(scale=args.scale, seed=args.seed)
    print(result.render())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    bundle = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    save_kb_json(bundle.kb1, out / "kb1.json")
    save_kb_json(bundle.kb2, out / "kb2.json")
    (out / "gold_matches.json").write_text(
        json.dumps(sorted(map(list, bundle.gold_matches)), indent=1)
    )
    (out / "gold_attribute_matches.json").write_text(
        json.dumps(sorted(map(list, bundle.gold_attribute_matches)), indent=1)
    )
    print(f"wrote kb1.json, kb2.json and gold files to {out}")
    return 0


EXPERIMENT_NAMES = (
    "table3", "figure3", "table4", "table5", "figure4",
    "table6", "figure5", "table7", "table8", "figure6",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Remp reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser("datasets", help="show dataset statistics")
    p_datasets.add_argument("--scale", type=float, default=1.0)
    p_datasets.add_argument("--seed", type=int, default=0)
    p_datasets.set_defaults(func=_cmd_datasets)

    p_run = sub.add_parser("run", help="run the Remp pipeline on a dataset")
    p_run.add_argument("dataset", choices=DATASET_NAMES)
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--mu", type=int, default=10)
    p_run.add_argument("--tau", type=float, default=0.9)
    p_run.add_argument("--budget", type=int, default=None)
    p_run.add_argument(
        "--error-rate", type=float, default=0.05,
        help="worker error rate; 0 uses a perfect oracle",
    )
    p_run.set_defaults(func=_cmd_run)

    p_exp = sub.add_parser("experiment", help="regenerate one paper artifact")
    p_exp.add_argument("name", choices=EXPERIMENT_NAMES)
    p_exp.add_argument("--scale", type=float, default=1.0)
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.set_defaults(func=_cmd_experiment)

    p_export = sub.add_parser("export", help="write a dataset to disk")
    p_export.add_argument("dataset", choices=DATASET_NAMES)
    p_export.add_argument("output")
    p_export.add_argument("--scale", type=float, default=1.0)
    p_export.add_argument("--seed", type=int, default=0)
    p_export.set_defaults(func=_cmd_export)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
