"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print Table II-style statistics for the four synthetic profiles.
``run``
    Run the Remp pipeline on one dataset and report quality and cost.
    With ``--store`` the run is resumable: offline work comes from the
    prepared-state cache, every loop checkpoints, and ``--resume RUN_ID``
    continues an interrupted run without re-asking questions.  With
    ``--workers N`` the ER graph is sharded into entity-closure
    components and executed on ``N`` processes (``repro.partition``),
    with per-shard checkpoints and a live per-partition status line; the
    merged result is identical for every ``N``.  With ``--stream`` the
    run executes unit-wise and records per-unit outcomes, making it the
    root of an updatable lineage; ``--since RUN_ID --steps K`` advances
    an ``evolving``-dataset stream run incrementally to step ``K``.
``update``
    Apply a KB delta (a JSON file) to a finished stream run: only the
    entity closures the delta touches are re-prepared and re-run, the
    rest is reused verbatim (``repro.stream``).
``partition``
    Inspect the shard layout (``partition info DATASET``).
``serve-batch``
    Run several datasets concurrently through the matching service.
``runs``
    Query the run ledger (``runs list`` / ``runs show RUN_ID``), dump a
    run's observability data (``runs trace`` / ``runs metrics``),
    materialise its artifact directory (``runs export-artifacts``) or
    follow an in-flight run live from another process (``runs watch``).
``top``
    One line per in-flight run across the store — the live counterpart
    of ``runs list``.
``bench``
    Cross-run perf tooling: ``bench compare BASELINE CURRENT`` diffs
    per-stage timings between two artifacts and flags slowdowns beyond
    a noise-modelled threshold (the CI regression sentinel).
``cache``
    Inspect or clear the prepared-state cache (``cache info`` / ``clear``).
``experiment``
    Regenerate one paper artifact (``table3`` … ``figure6``).
``export``
    Write a generated dataset's two KBs and gold standard to disk.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.core import Remp, RempConfig
from repro.crowd import CrowdPlatform
from repro.datasets import DATASET_NAMES, EVOLVING_NAME, load_dataset
from repro.eval import evaluate_matches
from repro.kb import describe, save_kb_json
from repro.obs import export_run_artifacts
from repro.partition import (
    CrowdSpec,
    ParallelRunner,
    PartialResult,
    ShardProgressPrinter,
    partition_state,
)
from repro.service import MatchingService
from repro.store import RunStore
from repro.stream import DeltaConflictError, KBDelta

#: Datasets the ``run`` family of commands accepts.
RUN_DATASET_CHOICES = DATASET_NAMES + (EVOLVING_NAME,)

#: Default store location; overridable per-command or via REPRO_STORE.
DEFAULT_STORE = ".repro/store.db"


def _store_path(args: argparse.Namespace) -> str:
    return args.store or os.environ.get("REPRO_STORE") or DEFAULT_STORE


def _cmd_datasets(args: argparse.Namespace) -> int:
    for name in DATASET_NAMES:
        bundle = load_dataset(name, seed=args.seed, scale=args.scale)
        print(f"== {name}: {bundle.num_matches} gold matches")
        print("  ", describe(bundle.kb1).as_row())
        print("  ", describe(bundle.kb2).as_row())
    return 0


def _apply_accel_flag(args: argparse.Namespace) -> None:
    """``--no-accel`` drops to the pure-Python reference kernels.

    ``--profile`` turns on the sampling wall-clock profiler the same
    way — through the environment, so shard worker processes inherit it
    and the run's artifact directory gains ``profile.folded``.
    """
    if getattr(args, "no_accel", False):
        os.environ["REPRO_NO_ACCEL"] = "1"
    if getattr(args, "profile", False):
        os.environ["REPRO_PROFILE"] = "1"
    if getattr(args, "faults", None):
        # A fault plan rides the environment so spawn-started shard
        # workers re-create it too; the value is JSON or @path-to-json.
        os.environ["REPRO_FAULTS"] = args.faults


def _cmd_run(args: argparse.Namespace) -> int:
    _apply_accel_flag(args)
    if args.dataset is None and args.resume is None and args.since is None:
        print(
            "run: a dataset is required unless --resume or --since is given",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None and args.workers < 1:
        print("run: --workers must be at least 1", file=sys.stderr)
        return 2
    has_store = bool(args.store or os.environ.get("REPRO_STORE"))
    if args.stream and not has_store:
        print("run: --stream requires --store (or REPRO_STORE)", file=sys.stderr)
        return 2
    if args.stream and args.budget is not None:
        print("run: --stream does not support --budget", file=sys.stderr)
        return 2
    if args.steps is not None and args.since is None:
        print("run: --steps only applies with --since", file=sys.stderr)
        return 2
    if args.since is not None:
        if not has_store:
            print("run: --since requires --store (or REPRO_STORE)", file=sys.stderr)
            return 2
        if args.resume or args.dataset is not None:
            print(
                "run: --since cannot be combined with a dataset or --resume",
                file=sys.stderr,
            )
            return 2
        # Like --resume: the lineage continues under the stored run's
        # configuration, so flags that would silently be ignored are
        # rejected instead.
        conflicting = [
            name
            for name, given in (
                ("--mu", args.mu != 10),
                ("--tau", args.tau != 0.9),
                ("--budget", args.budget is not None),
                ("--error-rate", args.error_rate != 0.05),
                ("--seed", args.seed != 0),
                ("--scale", args.scale != 1.0),
                ("--stream", args.stream),
            )
            if given
        ]
        if conflicting:
            print(
                f"run: {', '.join(conflicting)} cannot be combined with --since; "
                "the stored lineage's dataset and config are used",
                file=sys.stderr,
            )
            return 2
        if args.steps is None or args.steps < 1:
            print("run: --since requires --steps K (K >= 1)", file=sys.stderr)
            return 2
        return _run_since(args)
    if args.resume:
        # A resumed run continues under its stored configuration; flags
        # that would silently be ignored are rejected instead.
        conflicting = [
            name
            for name, given in (
                ("dataset", args.dataset is not None),
                ("--mu", args.mu != 10),
                ("--tau", args.tau != 0.9),
                ("--budget", args.budget is not None),
                ("--stream", args.stream),
            )
            if given
        ]
        if conflicting:
            print(
                f"run: {', '.join(conflicting)} cannot be combined with --resume; "
                "the stored run's dataset and config are used",
                file=sys.stderr,
            )
            return 2
    config = RempConfig(mu=args.mu, tau=args.tau, budget=args.budget)
    if args.store or args.resume or os.environ.get("REPRO_STORE"):
        return _run_via_service(args, config)
    bundle = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    if args.workers is not None:
        # Partitioned in-process run: shard the ER graph and fan the
        # shards onto a worker pool, streaming per-partition progress.
        state = Remp(config, seed=args.seed).prepare(bundle.kb1, bundle.kb2)
        crowd = CrowdSpec(
            truth=bundle.gold_matches, error_rate=args.error_rate, seed=args.seed
        )
        progress = ShardProgressPrinter()
        runner = ParallelRunner(
            config, seed=args.seed, workers=args.workers, on_event=progress
        )
        try:
            result = runner.run(state, crowd)
        except PartialResult as exc:
            # Graceful degradation: report the quarantined shards and
            # the merged healthy result instead of a traceback.
            print(f"run: degraded: {exc}", file=sys.stderr)
            _print_run_summary(exc.result, bundle.gold_matches)
            return 1
        finally:
            progress.close()
        _print_run_summary(result, bundle.gold_matches)
        return 0
    if args.error_rate > 0:
        platform = CrowdPlatform.with_simulated_workers(
            bundle.gold_matches, error_rate=args.error_rate, seed=args.seed
        )
    else:
        platform = CrowdPlatform.with_oracle(bundle.gold_matches)
    result = Remp(config).run(bundle.kb1, bundle.kb2, platform)
    _print_run_summary(result, bundle.gold_matches)
    return 0


def _print_run_summary(result, gold_matches, run_id: str | None = None) -> None:
    quality = evaluate_matches(result.matches, gold_matches)
    print(quality.as_row())
    line = (
        f"questions={result.questions_asked} loops={result.num_loops} "
        f"labeled={len(result.labeled_matches)} inferred={len(result.inferred_matches)} "
        f"isolated={len(result.isolated_matches)}"
    )
    if run_id is not None:
        line = f"run={run_id} " + line
    print(line)


def _run_via_service(args: argparse.Namespace, config: RempConfig) -> int:
    """Durable variant of ``run``: cached prepare, checkpoints, resume."""
    # A resumed run may turn out to be partitioned (the ledger remembers);
    # give it a printer too — monolithic sessions simply emit no events.
    progress = (
        ShardProgressPrinter() if args.workers is not None or args.resume else None
    )
    with MatchingService(_store_path(args), max_workers=1) as service:
        if args.resume:
            try:
                run_id = service.resume(
                    args.resume,
                    background=False,
                    workers=args.workers,
                    on_event=progress,
                )
            except (KeyError, ValueError) as exc:
                message = exc.args[0] if exc.args else str(exc)
                print(f"run: cannot resume: {message}", file=sys.stderr)
                return 1
            record = service.store.get_run(run_id)
            dataset, seed, scale = record.dataset, record.seed, record.scale
        else:
            run_id = service.submit(
                args.dataset,
                seed=args.seed,
                scale=args.scale,
                config=config,
                error_rate=args.error_rate,
                background=False,
                workers=args.workers,
                on_event=progress,
                stream=args.stream,
            )
            dataset, seed, scale = args.dataset, args.seed, args.scale
        try:
            result = service.result(run_id)
        except PartialResult as exc:
            # Graceful degradation: the ledger already recorded the run
            # as failed with the quarantined shards; show the merged
            # healthy remainder instead of a traceback.
            print(f"run: degraded: {exc}", file=sys.stderr)
            record = service.store.get_run(run_id)
            if record is not None and record.streaming:
                gold = service.stream_truth(run_id)
            else:
                gold = load_dataset(dataset, seed=seed, scale=scale).gold_matches
            _print_run_summary(exc.result, gold, run_id=run_id)
            return 1
        finally:
            if progress is not None:
                progress.close()
        record = service.store.get_run(run_id)
        if record is not None and record.streaming:
            # Stream runs match an evolved KB pair; fold the lineage's
            # gold updates instead of reading the base dataset's.
            gold = service.stream_truth(run_id)
        else:
            gold = load_dataset(dataset, seed=seed, scale=scale).gold_matches
        _print_run_summary(result, gold, run_id=run_id)
    return 0


def _run_since(args: argparse.Namespace) -> int:
    """``run --since RUN_ID --steps K``: advance an evolving stream run."""
    from repro.datasets import evolving_bundle

    with MatchingService(_store_path(args), max_workers=1) as service:
        record = service.store.get_run(args.since)
        if record is None:
            print(f"run: unknown run {args.since!r}", file=sys.stderr)
            return 1
        if not record.streaming or record.kb_fingerprint is None:
            print(
                f"run: {args.since!r} is not a stream run (or predates the "
                "lineage migration); submit it with --stream first",
                file=sys.stderr,
            )
            return 1
        if record.dataset != EVOLVING_NAME:
            print(
                f"run: --since generates deltas for the {EVOLVING_NAME!r} "
                f"dataset; run {args.since!r} matched {record.dataset!r}",
                file=sys.stderr,
            )
            return 1
        current_step = record.stream_step or 0
        if args.steps <= current_step:
            print(
                f"run: {args.since!r} is already at step {current_step}; "
                f"--steps must exceed it",
                file=sys.stderr,
            )
            return 1
        evolving = evolving_bundle(
            seed=record.seed, scale=record.scale, steps=args.steps
        )
        run_id = args.since
        try:
            for step in range(current_step + 1, args.steps + 1):
                # One printer per step: the live status line aggregates
                # per-shard state, which must not leak across runs.
                progress = ShardProgressPrinter()
                try:
                    run_id = service.update(
                        run_id,
                        evolving.deltas[step - 1],
                        workers=args.workers,
                        background=False,
                        on_event=progress,
                    )
                    result = service.result(run_id)
                finally:
                    progress.close()
                outcome = service.stream_outcome(run_id)
                print(
                    f"step {step}: run={run_id} "
                    f"reused={len(outcome.reused_keys)}/{len(outcome.records)} "
                    f"new-questions={outcome.questions_new}"
                )
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            print(f"run: cannot update: {message}", file=sys.stderr)
            return 1
        _print_run_summary(result, evolving.gold_at(args.steps), run_id=run_id)
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    """``update RUN_ID --delta FILE``: apply one KB delta incrementally."""
    _apply_accel_flag(args)
    delta_path = Path(args.delta)
    if not delta_path.exists():
        print(f"update: no such delta file {args.delta!r}", file=sys.stderr)
        return 2
    try:
        delta = KBDelta.from_doc(json.loads(delta_path.read_text()))
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        print(f"update: malformed delta file: {exc}", file=sys.stderr)
        return 2
    progress = ShardProgressPrinter()
    with MatchingService(_store_path(args), max_workers=1) as service:
        try:
            run_id = service.update(
                args.run_id,
                delta,
                workers=args.workers,
                background=False,
                on_event=progress,
            )
            result = service.result(run_id)
        except KeyError:
            progress.close()
            print(f"update: unknown run {args.run_id!r}", file=sys.stderr)
            return 1
        except DeltaConflictError as exc:
            progress.close()
            print(f"update: delta conflicts with the cached KBs: {exc}", file=sys.stderr)
            return 1
        except ValueError as exc:
            progress.close()
            print(f"update: {exc}", file=sys.stderr)
            return 1
        progress.close()
        outcome = service.stream_outcome(run_id)
        _print_run_summary(result, service.stream_truth(run_id), run_id=run_id)
        if outcome is not None:
            print(
                f"reused {len(outcome.reused_keys)}/{len(outcome.records)} units, "
                f"{outcome.questions_new} newly billed question(s)"
            )
    return 0


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    with MatchingService(
        _store_path(args), max_workers=args.workers, error_rate=args.error_rate
    ) as service:
        run_ids = [
            service.submit(
                dataset, seed=args.seed, scale=args.scale, strategy=args.strategy
            )
            for dataset in args.datasets
        ]
        for dataset, run_id in zip(args.datasets, run_ids):
            result = service.result(run_id)
            bundle = load_dataset(dataset, seed=args.seed, scale=args.scale)
            quality = evaluate_matches(result.matches, bundle.gold_matches)
            print(
                f"{run_id}  {dataset:<14} {quality.as_row()} "
                f"questions={result.questions_asked} loops={result.num_loops}"
            )
        print(
            f"prepared-state cache: {service.cache_hits} hits, "
            f"{service.cache_misses} misses"
        )
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    with RunStore(_store_path(args)) as store:
        if args.runs_command == "list":
            records = store.list_runs(dataset=args.dataset)
            if not records:
                print("no runs recorded")
                return 0
            print(
                f"{'RUN':<14} {'DATASET':<14} {'SEED':>4} {'SCALE':>6} "
                f"{'STRATEGY':<8} {'STATUS':<9} {'QUESTIONS':>9}  UPDATED"
            )
            for r in records:
                print(
                    f"{r.run_id:<14} {r.dataset:<14} {r.seed:>4} {r.scale:>6} "
                    f"{r.strategy:<8} {r.status:<9} {r.questions_asked:>9}  {r.updated_at}"
                )
            return 0
        record = store.get_run(args.run_id)
        if record is None:
            print(f"unknown run {args.run_id!r}", file=sys.stderr)
            return 1
        if args.runs_command == "watch":
            return _watch_run(store, args)
        if args.runs_command == "trace":
            from repro.obs.export import chrome_trace, filter_spans

            doc = store.load_run_obs(args.run_id) or {}
            spans = doc.get("trace", [])
            if not spans:
                print(f"no trace recorded for run {args.run_id!r}", file=sys.stderr)
                return 1
            spans = filter_spans(spans, name=args.span, shard_id=args.shard)
            if not spans:
                print(
                    f"no spans match the filter for run {args.run_id!r}",
                    file=sys.stderr,
                )
                return 1
            if args.chrome:
                print(json.dumps(chrome_trace(spans), sort_keys=True))
            else:
                for span in spans:
                    print(json.dumps(span, sort_keys=True))
            if doc.get("trace_dropped"):
                print(
                    f"({doc['trace_dropped']} span(s) dropped at the buffer cap)",
                    file=sys.stderr,
                )
            return 0
        if args.runs_command == "metrics":
            doc = store.load_run_obs(args.run_id) or {}
            metrics = doc.get("metrics") or {"counters": {}, "gauges": {}}
            if args.prometheus:
                from repro.obs.export import prometheus_text

                timings = store.load_run_timings(args.run_id) or {}
                sys.stdout.write(
                    prometheus_text(
                        metrics,
                        labels={
                            "run_id": args.run_id,
                            "dataset": record.dataset,
                        },
                        timings=timings.get("stages"),
                    )
                )
                return 0
            out = {
                "metrics": metrics,
                "cost_ledger": doc.get("cost_ledger"),
            }
            print(json.dumps(out, indent=1, sort_keys=True))
            return 0
        if args.runs_command == "export-artifacts":
            try:
                dest = export_run_artifacts(
                    store, args.run_id, root=args.output, force=args.force
                )
            except FileExistsError as exc:
                print(f"export-artifacts: {exc}", file=sys.stderr)
                return 1
            print(f"wrote run artifacts to {dest}")
            return 0
        # runs show
        for key in (
            "run_id", "dataset", "seed", "scale", "config_hash", "strategy",
            "error_rate", "status", "questions_asked", "created_at", "updated_at",
        ):
            print(f"{key}: {getattr(record, key)}")
        if record.streaming:
            print(f"stream_step: {record.stream_step}")
            print(f"kb_fingerprint: {record.kb_fingerprint}")
            chain = store.lineage(args.run_id)
            if len(chain) > 1:
                print("lineage: " + " -> ".join(r.run_id for r in chain))
            units = store.load_unit_record_docs(args.run_id)
            if units:
                reusable = sum(1 for doc in units.values() if doc["kind"] == "graph")
                print(f"stream units: {len(units)} recorded ({reusable} reusable)")
        checkpoint = store.load_checkpoint(args.run_id)
        if checkpoint is not None:
            print(
                f"checkpoint: loop {checkpoint.next_loop_index}, "
                f"{checkpoint.questions_asked} questions asked, "
                f"{len(checkpoint.answer_log)} labels recorded"
            )
        timings = store.load_run_timings(args.run_id)
        if timings is not None:
            print(f"accel: {'on' if timings.get('accel') else 'off (REPRO_NO_ACCEL)'}")
            stages = timings.get("stages", {})
            if stages:
                print("kernel timings (seconds x calls):")
                for name, entry in sorted(
                    stages.items(), key=lambda item: -item[1]["seconds"]
                ):
                    print(
                        f"  {name:<28} {entry['seconds']:>9.3f}s x{entry['calls']}"
                    )
                total = sum(entry["seconds"] for entry in stages.values())
                print(f"  {'total (wall-clock)':<28} {total:>9.3f}s")
        result = store.get_result(args.run_id)
        if result is not None:
            print(
                f"result: {len(result.matches)} matches "
                f"(labeled={len(result.labeled_matches)} "
                f"inferred={len(result.inferred_matches)} "
                f"isolated={len(result.isolated_matches)}) "
                f"in {result.num_loops} loops"
            )
        if record.error:
            print(f"error:\n{record.error}")
    return 0


def _watch_run(store: RunStore, args: argparse.Namespace) -> int:
    """``runs watch RUN_ID``: tail the live event stream of one run.

    Polls the ``run_events`` table (the telemetry bus's durable half) by
    sequence number, so it works from a *different process* than the one
    executing the run.  On a TTY the multi-line frame redraws in place;
    on a pipe each changed frame prints once.  Exits when the run
    reaches a terminal status (or after ``--for`` seconds).
    """
    from repro.obs.live import RunWatch

    watch = RunWatch()
    stream = sys.stdout
    live = bool(getattr(stream, "isatty", lambda: False)())
    deadline = None if args.duration is None else time.monotonic() + args.duration
    frame_lines = 0
    while True:
        record = store.get_run(args.run_id)
        if record is None:
            print(f"unknown run {args.run_id!r}", file=sys.stderr)
            return 1
        changed = watch.feed(store.tail_run_events(args.run_id, watch.last_seq))
        finished = record.finished
        timings = None
        if finished:
            doc = store.load_run_timings(args.run_id)
            timings = doc.get("stages") if doc else None
        frame = watch.render(record, timings)
        if live:
            if frame_lines:
                # Redraw in place: up over the previous frame, clear down.
                stream.write(f"\x1b[{frame_lines}A\x1b[J")
            stream.write(frame + "\n")
            frame_lines = frame.count("\n") + 1
        elif changed or finished or not frame_lines:
            stream.write(frame + "\n")
            frame_lines = 1
        stream.flush()
        if finished or args.once:
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            return 0
        time.sleep(args.interval)


def _cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: every in-flight run of the store, one line each."""
    from repro.obs.live import render_top

    deadline = None if args.duration is None else time.monotonic() + args.duration
    with RunStore(_store_path(args)) as store:
        while True:
            rows = [
                (record, store.last_run_event(record.run_id))
                for record in store.active_runs()
            ]
            print(render_top(rows))
            if not args.watch:
                return 0
            if deadline is not None and time.monotonic() >= deadline:
                return 0
            time.sleep(args.interval)
            print()


def _cmd_bench(args: argparse.Namespace) -> int:
    """``bench compare``: the cross-run regression sentinel."""
    from repro.obs import sentinel

    try:
        baseline = sentinel.load_snapshot(args.baseline)
        current = sentinel.load_snapshot(args.current)
    except (FileNotFoundError, json.JSONDecodeError) as exc:
        print(f"bench compare: {exc}", file=sys.stderr)
        return 2
    findings = sentinel.compare(
        baseline,
        current,
        max_slowdown=args.max_slowdown,
        min_seconds=args.min_seconds,
        z=args.z,
    )
    print(sentinel.render_report(baseline, current, findings))
    return 1 if sentinel.flagged(findings) else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    with RunStore(_store_path(args)) as store:
        if args.cache_command == "clear":
            removed = store.clear_prepared()
            blobs = store.clear_substrate_blobs()
            print(f"removed {removed} prepared state(s) from {store.path}")
            print(f"removed {blobs} substrate blob(s)")
        else:  # info
            stats = store.stats()
            print(f"store: {stats['path']}")
            print(f"prepared states: {stats['prepared_states']}")
            for dataset, seed, scale, digest in store.list_prepared():
                print(f"  {dataset} seed={seed} scale={scale} config={digest}")
            print(f"substrate blobs: {stats['substrate_blobs']}")
            print(f"runs: {stats['runs']} {stats['runs_by_status']}")
            print(f"checkpoints: {stats['checkpoints']}")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    """``partition info``: show the shard layout for one dataset."""
    bundle = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    state = Remp(RempConfig(), seed=args.seed).prepare(bundle.kb1, bundle.kb2)
    kwargs = {}
    if args.shards is not None:
        kwargs["target_shards"] = args.shards
    plan = partition_state(state, max_shard_size=args.max_shard_size, **kwargs)
    print(f"== {args.dataset} seed={args.seed} scale={args.scale}")
    print(plan.describe())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    result = module.run(scale=args.scale, seed=args.seed)
    print(result.render())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    bundle = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    save_kb_json(bundle.kb1, out / "kb1.json")
    save_kb_json(bundle.kb2, out / "kb2.json")
    (out / "gold_matches.json").write_text(
        json.dumps(sorted(map(list, bundle.gold_matches)), indent=1)
    )
    (out / "gold_attribute_matches.json").write_text(
        json.dumps(sorted(map(list, bundle.gold_attribute_matches)), indent=1)
    )
    print(f"wrote kb1.json, kb2.json and gold files to {out}")
    return 0


EXPERIMENT_NAMES = (
    "table3", "figure3", "table4", "table5", "figure4",
    "table6", "figure5", "table7", "table8", "figure6",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Remp reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser("datasets", help="show dataset statistics")
    p_datasets.add_argument("--scale", type=float, default=1.0)
    p_datasets.add_argument("--seed", type=int, default=0)
    p_datasets.set_defaults(func=_cmd_datasets)

    p_run = sub.add_parser("run", help="run the Remp pipeline on a dataset")
    p_run.add_argument("dataset", nargs="?", choices=RUN_DATASET_CHOICES)
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--mu", type=int, default=10)
    p_run.add_argument("--tau", type=float, default=0.9)
    p_run.add_argument("--budget", type=int, default=None)
    p_run.add_argument(
        "--error-rate", type=float, default=0.05,
        help="worker error rate; 0 uses a perfect oracle",
    )
    p_run.add_argument(
        "--store", default=None,
        help="run durably through this store: cached prepare + loop checkpoints",
    )
    p_run.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="resume an interrupted run from its checkpoint",
    )
    p_run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="partitioned execution: shard the ER graph and run on N"
        " processes (the merged result is identical for every N)",
    )
    p_run.add_argument(
        "--stream", action="store_true",
        help="run unit-wise and record per-unit outcomes, making this the"
        " root of an updatable lineage (requires --store)",
    )
    p_run.add_argument(
        "--since", default=None, metavar="RUN_ID",
        help="advance an evolving-dataset stream run incrementally"
        " (combine with --steps K)",
    )
    p_run.add_argument(
        "--steps", type=int, default=None, metavar="K",
        help="target stream step for --since",
    )
    p_run.add_argument(
        "--no-accel", action="store_true", dest="no_accel",
        help="disable the vectorized/incremental kernels (repro.accel);"
        " results are byte-identical, only slower",
    )
    p_run.add_argument(
        "--profile", action="store_true",
        help="sample wall-clock stacks during the run (REPRO_PROFILE=1);"
        " with --store the folded stacks land in the run's artifacts",
    )
    p_run.add_argument(
        "--faults", default=None, metavar="JSON_OR_@FILE",
        help="activate a deterministic fault plan (repro.faults) for the"
        " run: inline JSON or @path/to/plan.json (sets REPRO_FAULTS)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_update = sub.add_parser(
        "update", help="apply a KB delta to a finished stream run"
    )
    p_update.add_argument("run_id")
    p_update.add_argument(
        "--delta", required=True, metavar="FILE",
        help="JSON file holding a KBDelta document",
    )
    p_update.add_argument("--workers", type=int, default=None, metavar="N")
    p_update.add_argument("--store", default=None)
    p_update.add_argument(
        "--no-accel", action="store_true", dest="no_accel",
        help="disable the vectorized/incremental kernels (repro.accel)",
    )
    p_update.add_argument(
        "--faults", default=None, metavar="JSON_OR_@FILE",
        help="activate a deterministic fault plan (repro.faults) for the"
        " update: inline JSON or @path/to/plan.json (sets REPRO_FAULTS)",
    )
    p_update.set_defaults(func=_cmd_update)

    p_partition = sub.add_parser("partition", help="inspect the partition layer")
    partition_sub = p_partition.add_subparsers(dest="partition_command", required=True)
    p_partition_info = partition_sub.add_parser(
        "info", help="show the shard layout for a dataset"
    )
    p_partition_info.add_argument("dataset", choices=DATASET_NAMES)
    p_partition_info.add_argument("--scale", type=float, default=1.0)
    p_partition_info.add_argument("--seed", type=int, default=0)
    p_partition_info.add_argument("--shards", type=int, default=None,
                                  help="target number of graph shards")
    p_partition_info.add_argument("--max-shard-size", type=int, default=None,
                                  help="cap on candidate pairs per graph shard")
    p_partition.set_defaults(func=_cmd_partition)

    p_serve = sub.add_parser(
        "serve-batch", help="run several datasets concurrently via the service"
    )
    p_serve.add_argument("datasets", nargs="+", choices=DATASET_NAMES)
    p_serve.add_argument("--scale", type=float, default=1.0)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--strategy", default="remp", choices=("remp", "maxinf", "maxpr"))
    p_serve.add_argument("--workers", type=int, default=4, help="thread-pool size")
    p_serve.add_argument(
        "--error-rate", type=float, default=0.0,
        help="worker error rate; 0 uses a perfect oracle",
    )
    p_serve.add_argument("--store", default=None)
    p_serve.set_defaults(func=_cmd_serve_batch)

    p_runs = sub.add_parser("runs", help="query the run ledger")
    p_runs.add_argument("--store", default=None)
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    p_runs_list = runs_sub.add_parser("list", help="list recorded runs")
    p_runs_list.add_argument("--dataset", default=None)
    p_runs_list.add_argument("--store", default=argparse.SUPPRESS)
    p_runs_show = runs_sub.add_parser("show", help="show one run in detail")
    p_runs_show.add_argument("run_id")
    p_runs_show.add_argument("--store", default=argparse.SUPPRESS)
    p_runs_trace = runs_sub.add_parser(
        "trace", help="dump a run's trace spans as JSONL"
    )
    p_runs_trace.add_argument("run_id")
    p_runs_trace.add_argument(
        "--span", default=None, metavar="NAME",
        help="only spans whose name contains NAME",
    )
    p_runs_trace.add_argument(
        "--shard", type=int, default=None, metavar="ID",
        help="only spans correlated to this shard id",
    )
    p_runs_trace.add_argument(
        "--chrome", action="store_true",
        help="emit Chrome trace_event JSON (loads in Perfetto) instead of JSONL",
    )
    p_runs_trace.add_argument("--store", default=argparse.SUPPRESS)
    p_runs_metrics = runs_sub.add_parser(
        "metrics", help="print a run's metrics and cost ledger as JSON"
    )
    p_runs_metrics.add_argument("run_id")
    p_runs_metrics.add_argument(
        "--prometheus", action="store_true",
        help="emit the Prometheus text exposition format instead of JSON",
    )
    p_runs_metrics.add_argument("--store", default=argparse.SUPPRESS)
    p_runs_watch = runs_sub.add_parser(
        "watch", help="follow an in-flight run live (tails the event stream)"
    )
    p_runs_watch.add_argument("run_id")
    p_runs_watch.add_argument(
        "--interval", type=float, default=0.5, metavar="S",
        help="poll interval in seconds (default: 0.5)",
    )
    p_runs_watch.add_argument(
        "--for", type=float, default=None, metavar="S", dest="duration",
        help="stop watching after S seconds even if the run is still going",
    )
    p_runs_watch.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (snapshot mode)",
    )
    p_runs_watch.add_argument("--store", default=argparse.SUPPRESS)
    p_runs_export = runs_sub.add_parser(
        "export-artifacts",
        help="materialise runs/<run_id>/ (meta, trace, metrics, ledger, result)",
    )
    p_runs_export.add_argument("run_id")
    p_runs_export.add_argument(
        "--output", "--out", default="runs", metavar="DIR",
        help="artifact root directory (default: runs/)",
    )
    p_runs_export.add_argument(
        "--force", action="store_true",
        help="overwrite an existing runs/<run_id>/ export",
    )
    p_runs_export.add_argument("--store", default=argparse.SUPPRESS)
    p_runs.set_defaults(func=_cmd_runs)

    p_top = sub.add_parser(
        "top", help="show every in-flight run of the store (live counterpart"
        " of 'runs list')"
    )
    p_top.add_argument("--store", default=None)
    p_top.add_argument(
        "--watch", action="store_true",
        help="refresh repeatedly instead of printing one snapshot",
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh interval for --watch (default: 1.0)",
    )
    p_top.add_argument(
        "--for", type=float, default=None, metavar="S", dest="duration",
        help="stop after S seconds (with --watch)",
    )
    p_top.set_defaults(func=_cmd_top)

    p_bench = sub.add_parser(
        "bench", help="cross-run benchmark tooling (regression sentinel)"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bench_compare = bench_sub.add_parser(
        "compare",
        help="diff per-stage timings between two artifacts; exit 1 on a"
        " flagged regression",
    )
    p_bench_compare.add_argument(
        "baseline",
        help="baseline artifact: a runs/<id>/ dir, BENCH_history.jsonl, or"
        " BENCH_*.json",
    )
    p_bench_compare.add_argument("current", help="current artifact (same shapes)")
    p_bench_compare.add_argument(
        "--max-slowdown", type=float, default=0.5, metavar="FRAC",
        help="minimum tolerated slowdown fraction before flagging (default 0.5)",
    )
    p_bench_compare.add_argument(
        "--min-seconds", type=float, default=0.05, metavar="S",
        help="ignore stages faster than S seconds on either side (default 0.05)",
    )
    p_bench_compare.add_argument(
        "--z", type=float, default=3.0,
        help="noise multiplier: allowance grows to z x the baseline's"
        " coefficient of variation (default 3.0)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_cache = sub.add_parser("cache", help="inspect or clear the prepared-state cache")
    p_cache.add_argument("--store", default=None)
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_info = cache_sub.add_parser("info", help="show cache and ledger statistics")
    p_cache_info.add_argument("--store", default=argparse.SUPPRESS)
    p_cache_clear = cache_sub.add_parser("clear", help="drop all cached prepared states")
    p_cache_clear.add_argument("--store", default=argparse.SUPPRESS)
    p_cache.set_defaults(func=_cmd_cache)

    p_exp = sub.add_parser("experiment", help="regenerate one paper artifact")
    p_exp.add_argument("name", choices=EXPERIMENT_NAMES)
    p_exp.add_argument("--scale", type=float, default=1.0)
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.set_defaults(func=_cmd_experiment)

    p_export = sub.add_parser("export", help="write a dataset to disk")
    p_export.add_argument("dataset", choices=DATASET_NAMES)
    p_export.add_argument("output")
    p_export.add_argument("--scale", type=float, default=1.0)
    p_export.add_argument("--seed", type=int, default=0)
    p_export.set_defaults(func=_cmd_export)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # --no-accel / --profile work by setting REPRO_NO_ACCEL /
    # REPRO_PROFILE (checked at call sites, including in worker
    # processes); restore the prior values so embedding callers can
    # invoke main() repeatedly without one command's flag leaking into
    # the next.
    previous = {
        name: os.environ.get(name)
        for name in ("REPRO_NO_ACCEL", "REPRO_PROFILE", "REPRO_FAULTS")
    }
    try:
        return args.func(args)
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
