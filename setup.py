"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; ``pip install -e . --no-build-isolation --no-use-pep517``
falls back to this file.
"""

from setuptools import setup

setup()
